package scenario

import (
	"testing"

	"gmp/internal/clique"
	"gmp/internal/geom"
	"gmp/internal/routing"
	"gmp/internal/topology"
)

// validate checks the invariants every scenario must satisfy: a valid
// connected topology and a route for every flow.
func validate(t *testing.T, s Scenario) (*topology.Topology, *routing.Table) {
	t.Helper()
	topo, err := s.Topology()
	if err != nil {
		t.Fatalf("%s: %v", s.Name, err)
	}
	routes := routing.Build(topo)
	for _, f := range s.Flows {
		if err := f.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if !topo.Valid(f.Src) || !topo.Valid(f.Dst) {
			t.Fatalf("%s: flow %d endpoints out of range", s.Name, f.ID)
		}
		if routes.HopCount(f.Src, f.Dst) <= 0 {
			t.Fatalf("%s: flow %d has no route", s.Name, f.ID)
		}
	}
	return topo, routes
}

func TestFig1(t *testing.T) {
	s := Fig1()
	topo, routes := validate(t, s)
	// f1 (x->t) takes 4 hops through i, j, z; f2 (y->v) takes 3 hops.
	if got := routes.HopCount(s.Flows[0].Src, s.Flows[0].Dst); got != 4 {
		t.Errorf("f1 hops = %d, want 4", got)
	}
	if got := routes.HopCount(s.Flows[1].Src, s.Flows[1].Dst); got != 3 {
		t.Errorf("f2 hops = %d, want 3", got)
	}
	// The interferer (p,q) contends with (z,t) but not with (i,j).
	if !topo.LinksContend(topology.Link{From: 4, To: 5}, topology.Link{From: 7, To: 8}) {
		t.Error("interferer does not contend with (z,t)")
	}
	if topo.LinksContend(topology.Link{From: 2, To: 3}, topology.Link{From: 7, To: 8}) {
		t.Error("interferer wrongly contends with (i,j)")
	}
	// f1 and f2 share the i->j segment.
	p1, err := routes.Path(s.Flows[0].Src, s.Flows[0].Dst)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := routes.Path(s.Flows[1].Src, s.Flows[1].Dst)
	if err != nil {
		t.Fatal(err)
	}
	if p1[1] != 2 || p1[2] != 3 || p2[1] != 2 || p2[2] != 3 {
		t.Errorf("paths do not share i->j: %v, %v", p1, p2)
	}
}

func TestFig2CliqueStructure(t *testing.T) {
	s := Fig2([4]float64{1, 1, 1, 1})
	topo, _ := validate(t, s)
	set := clique.Build(topo)

	l01 := topology.Link{From: 0, To: 1}
	l12 := topology.Link{From: 1, To: 2}
	l34 := topology.Link{From: 3, To: 4}
	l45 := topology.Link{From: 4, To: 5}

	// The paper's clique 0 {(0,1),(1,2)} and clique 1 {(1,2),(3,4),(4,5)}:
	// every clique containing (0,1) must exclude (3,4) and (4,5), and
	// some clique must contain (1,2),(3,4),(4,5) together.
	foundClique1 := false
	for _, c := range set.All() {
		if c.Contains(l01) && (c.Contains(l34) || c.Contains(l45)) {
			t.Errorf("clique %v mixes (0,1) with clique-1 links", c.Links)
		}
		if c.Contains(l12) && c.Contains(l34) && c.Contains(l45) {
			foundClique1 = true
		}
	}
	if !foundClique1 {
		t.Error("missing clique {(1,2),(3,4),(4,5)}")
	}
	// All four flows are single-hop.
	for _, f := range s.Flows {
		if s.Flows[0].DesiredRate != DefaultDesiredRate {
			t.Errorf("flow %d desire %v", f.ID, f.DesiredRate)
		}
	}
}

func TestFig2Weights(t *testing.T) {
	s := Fig2([4]float64{1, 2, 1, 3})
	want := []float64{1, 2, 1, 3}
	for i, f := range s.Flows {
		if f.Weight != want[i] {
			t.Errorf("flow %d weight %v, want %v", i, f.Weight, want[i])
		}
	}
}

func TestFig3(t *testing.T) {
	s := Fig3()
	topo, routes := validate(t, s)
	wantHops := []int{3, 2, 1}
	for i, f := range s.Flows {
		if got := routes.HopCount(f.Src, f.Dst); got != wantHops[i] {
			t.Errorf("flow %d hops = %d, want %d", i, got, wantHops[i])
		}
		if f.Dst != 3 {
			t.Errorf("flow %d dst = %d, want common sink 3", i, f.Dst)
		}
	}
	// Hidden terminal: senders 0 and 2 out of carrier sense.
	if topo.InCSRange(0, 2) {
		t.Error("nodes 0 and 2 should be hidden from each other")
	}
	// All three links in one clique.
	set := clique.Build(topo)
	if len(set.All()) != 1 {
		t.Errorf("fig3 cliques = %d, want 1", len(set.All()))
	}
}

func TestFig4(t *testing.T) {
	s := Fig4()
	topo, routes := validate(t, s)
	if len(s.Flows) != 8 {
		t.Fatalf("flows = %d, want 8", len(s.Flows))
	}
	for g := 0; g < 4; g++ {
		twoHop := s.Flows[2*g]
		oneHop := s.Flows[2*g+1]
		if got := routes.HopCount(twoHop.Src, twoHop.Dst); got != 2 {
			t.Errorf("cell %d two-hop flow has %d hops", g, got)
		}
		if got := routes.HopCount(oneHop.Src, oneHop.Dst); got != 1 {
			t.Errorf("cell %d one-hop flow has %d hops", g, got)
		}
	}
	// Adjacent cells contend: Lb_g shares a clique with La_{g+1}.
	set := clique.Build(topo)
	lb0 := topology.Link{From: 1, To: 2}
	la1 := topology.Link{From: 3, To: 4}
	coupled := false
	for _, c := range set.All() {
		if c.Contains(lb0) && c.Contains(la1) {
			coupled = true
		}
	}
	if !coupled {
		t.Error("adjacent cells do not share a clique")
	}
	// Non-adjacent cells must not contend directly.
	lb3 := topology.Link{From: 10, To: 11}
	if topo.LinksContend(lb0, lb3) {
		t.Error("cells 0 and 3 wrongly contend")
	}
}

func TestChain(t *testing.T) {
	s, err := Chain(5, 200)
	if err != nil {
		t.Fatal(err)
	}
	_, routes := validate(t, s)
	if got := routes.HopCount(0, 4); got != 4 {
		t.Errorf("chain hops = %d, want 4", got)
	}
	if _, err := Chain(1, 200); err == nil {
		t.Error("1-node chain accepted")
	}
}

func TestGridAndWithFlows(t *testing.T) {
	g, err := Grid(3, 3, 200)
	if err != nil {
		t.Fatal(err)
	}
	s := g.WithFlows([][3]int{{0, 8, 1}, {2, 6, 2}})
	_, routes := validate(t, s)
	if s.Flows[1].Weight != 2 {
		t.Error("WithFlows weight lost")
	}
	if routes.HopCount(0, 8) < 2 {
		t.Error("grid corners should be multihop")
	}
	if _, err := Grid(0, 3, 200); err == nil {
		t.Error("empty grid accepted")
	}
}

func TestMeshGateway(t *testing.T) {
	s, err := MeshGateway(4, 4, 6, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	validate(t, s)
	if len(s.Flows) != 6 {
		t.Fatalf("flows = %d, want 6", len(s.Flows))
	}
	for _, f := range s.Flows {
		if f.Dst != 0 {
			t.Errorf("flow %d dst = %d, want gateway 0", f.ID, f.Dst)
		}
		if f.Src == 0 {
			t.Error("gateway is a source")
		}
	}
	if _, err := MeshGateway(2, 2, 4, 200, 1); err == nil {
		t.Error("too many senders accepted")
	}
}

func TestRandomConnected(t *testing.T) {
	s, err := RandomConnected(15, 5, 800, 800, 7)
	if err != nil {
		t.Fatal(err)
	}
	topo, _ := validate(t, s)
	if !topo.Connected() {
		t.Error("random topology not connected")
	}
	if len(s.Flows) != 5 {
		t.Errorf("flows = %d, want 5", len(s.Flows))
	}
	// Determinism: same seed, same placement.
	s2, err := RandomConnected(15, 5, 800, 800, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s.Positions {
		if s.Positions[i] != s2.Positions[i] {
			t.Fatal("random scenario not deterministic for a fixed seed")
		}
	}
}

func TestRandomConnectedImpossible(t *testing.T) {
	// 30 nodes in a 10 km square will essentially never connect.
	if _, err := RandomConnected(30, 2, 10000, 10000, 1); err == nil {
		t.Error("expected failure for a hopeless placement")
	}
}

func TestParallelChains(t *testing.T) {
	// A 240 m gap puts adjacent chains inside carrier sense of each
	// other (with cs = tx there is no "contending but unlinked" regime;
	// routing still keeps each flow inside its own chain).
	s, err := ParallelChains(3, 4, 200, 240)
	if err != nil {
		t.Fatal(err)
	}
	topo, routes := validate(t, s)
	if len(s.Flows) != 3 {
		t.Fatalf("flows = %d", len(s.Flows))
	}
	for _, f := range s.Flows {
		if got := routes.HopCount(f.Src, f.Dst); got != 3 {
			t.Errorf("chain flow hops = %d, want 3", got)
		}
	}
	if !topo.LinksContend(
		topology.Link{From: 0, To: 1},
		topology.Link{From: 4, To: 5},
	) {
		t.Error("adjacent chains should contend at 240m gap")
	}
	// A 600 m gap isolates the chains entirely.
	far, err := ParallelChains(2, 3, 200, 600)
	if err != nil {
		t.Fatal(err)
	}
	ftopo, err := far.Topology()
	if err != nil {
		t.Fatal(err)
	}
	if ftopo.LinksContend(topology.Link{From: 0, To: 1}, topology.Link{From: 3, To: 4}) {
		t.Error("600m-apart chains should not contend")
	}
	if _, err := ParallelChains(0, 4, 200, 300); err == nil {
		t.Error("invalid chain count accepted")
	}
}

func TestCross(t *testing.T) {
	s, err := Cross(2, 200)
	if err != nil {
		t.Fatal(err)
	}
	_, routes := validate(t, s)
	for _, f := range s.Flows {
		if got := routes.HopCount(f.Src, f.Dst); got != 4 {
			t.Errorf("cross flow hops = %d, want 4", got)
		}
	}
	// Both flows route through the center node 0.
	for _, f := range s.Flows {
		path, err := routes.Path(f.Src, f.Dst)
		if err != nil {
			t.Fatal(err)
		}
		through := false
		for _, n := range path {
			if n == 0 {
				through = true
			}
		}
		if !through {
			t.Errorf("flow %d->%d avoids the center: %v", f.Src, f.Dst, path)
		}
	}
	if _, err := Cross(0, 200); err == nil {
		t.Error("invalid arm length accepted")
	}
}

func TestStar(t *testing.T) {
	s, err := Star(6, 200)
	if err != nil {
		t.Fatal(err)
	}
	_, routes := validate(t, s)
	for _, f := range s.Flows {
		if f.Dst != 0 || routes.HopCount(f.Src, f.Dst) != 1 {
			t.Errorf("star flow %d->%d not a 1-hop spoke", f.Src, f.Dst)
		}
	}
	if _, err := Star(0, 200); err == nil {
		t.Error("invalid star accepted")
	}
}

func TestCity(t *testing.T) {
	s, err := City(400, 4, 10, 220, 1)
	if err != nil {
		t.Fatal(err)
	}
	topo, _ := validate(t, s)
	if !topo.Connected() {
		t.Error("city topology not connected")
	}
	if len(s.Flows) != 10 {
		t.Fatalf("flows = %d, want 10", len(s.Flows))
	}
	// The 220 m street pitch with bounded jitter must produce the flat
	// 4-cardinal-neighbor degree the scaling benchmarks rely on.
	for i := 0; i < topo.NumNodes(); i++ {
		if d := len(topo.Neighbors(topology.NodeID(i))); d < 2 || d > 4 {
			t.Fatalf("node %d degree %d outside [2,4]", i, d)
		}
	}
	// Every flow terminates at its source's nearest gateway, and no
	// gateway originates a flow.
	gw := make(map[topology.NodeID]bool)
	for _, f := range s.Flows {
		gw[f.Dst] = true
	}
	for _, f := range s.Flows {
		if gw[f.Src] {
			t.Errorf("flow %d source %d is a gateway", f.ID, f.Src)
		}
		sp := s.Positions[f.Src]
		for d := range gw {
			if geom.Dist(sp, s.Positions[d]) < geom.Dist(sp, s.Positions[f.Dst]) {
				t.Errorf("flow %d routed to gateway %d but %d is closer", f.ID, f.Dst, d)
			}
		}
	}
	// Determinism: same parameters, same scenario.
	s2, err := City(400, 4, 10, 220, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s.Positions {
		if s.Positions[i] != s2.Positions[i] {
			t.Fatal("city scenario not deterministic for a fixed seed")
		}
	}
	if _, err := City(1, 1, 1, 220, 1); err == nil {
		t.Error("too-small city accepted")
	}
	if _, err := City(10, 10, 1, 220, 1); err == nil {
		t.Error("all-gateway city accepted")
	}
	if _, err := City(10, 2, 9, 220, 1); err == nil {
		t.Error("over-subscribed city accepted")
	}
	if _, err := City(10, 2, 3, 0, 1); err == nil {
		t.Error("zero-pitch city accepted")
	}
}
