package scenario

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"gmp/internal/churn"
	"gmp/internal/faults"
	"gmp/internal/mobility"
	"gmp/internal/topology"
)

// canonicalFixtures covers every block of the file format: plain
// topologies, faults, mobility and churn.
func canonicalFixtures(t *testing.T) map[string]Scenario {
	t.Helper()
	veh, err := Vehicular(6, 180, 12)
	if err != nil {
		t.Fatal(err)
	}
	drones, err := DroneSwarm(9, 3, 80)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Scenario{
		"fig1":          Fig1(),
		"fig2-weighted": Fig2([4]float64{1, 2, 1, 3}),
		"fig3":          Fig3(),
		"fig4":          Fig4(),
		"faults": Fig2([4]float64{1, 1, 1, 1}).WithFaults([]faults.Event{
			{At: 1500 * time.Millisecond, Kind: faults.LinkDegrade, From: 0, To: 1, LossProb: 0.25},
			{At: 30 * time.Second, Kind: faults.NodeDown, Node: 1},
			{At: 60 * time.Second, Kind: faults.NodeUp, Node: 1},
		}),
		"mobility": Fig3().WithMobility(&mobility.Config{
			Model:    mobility.RandomWaypoint,
			Epoch:    1500 * time.Millisecond,
			Start:    10 * time.Second,
			Stop:     90 * time.Second,
			MinSpeed: 1,
			MaxSpeed: 12.5,
			Pause:    250 * time.Millisecond,
			MinX:     -100, MaxX: 700, MinY: -200, MaxY: 200,
			Pinned: []topology.NodeID{3},
		}),
		"churn": Fig3().WithChurn(&churn.Config{
			Process: churn.Poisson,
			Rate:    0.3,
			Matrix:  churn.Random,
		}),
		"vehicular": veh,
		"drones":    drones,
	}
}

// TestCanonicalJSONFixedPoint checks the content-address contract gmpd
// relies on: canonicalizing, loading the canonical bytes, and
// canonicalizing again yields identical bytes, for every block of the
// file format. A field that Load accepts but Save drops (or normalizes
// differently) would break the fixed point and show up here.
func TestCanonicalJSONFixedPoint(t *testing.T) {
	for name, s := range canonicalFixtures(t) {
		t.Run(name, func(t *testing.T) {
			c1, err := s.CanonicalJSON()
			if err != nil {
				t.Fatal(err)
			}
			loaded, err := Load(bytes.NewReader(c1))
			if err != nil {
				t.Fatalf("canonical bytes do not load: %v", err)
			}
			c2, err := loaded.CanonicalJSON()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(c1, c2) {
				t.Fatalf("canonicalization is not a fixed point:\nfirst:  %s\nsecond: %s", c1, c2)
			}
			// Rebuilding the same scenario must address identically.
			c3, err := s.CanonicalJSON()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(c1, c3) {
				t.Fatal("CanonicalJSON is not deterministic across calls")
			}
		})
	}
}

func TestCanonicalizeJSONKeyOrder(t *testing.T) {
	a, err := CanonicalizeJSON([]byte(`{"b": 1, "a": {"d": [2, 3], "c": true}}`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := CanonicalizeJSON([]byte("{\n  \"a\": {\"c\": true, \"d\": [2, 3]},\n  \"b\": 1\n}"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("key order / whitespace leaked into canonical form: %s vs %s", a, b)
	}
	if want := `{"a":{"c":true,"d":[2,3]},"b":1}`; string(a) != want {
		t.Fatalf("canonical form = %s, want %s", a, want)
	}
}

func TestCanonicalizeJSONNumbers(t *testing.T) {
	// Number literals pass through verbatim — no float re-rounding.
	got, err := CanonicalizeJSON([]byte(`{"x": 0.30000000000000004, "y": 9007199254740993}`))
	if err != nil {
		t.Fatal(err)
	}
	for _, lit := range []string{"0.30000000000000004", "9007199254740993"} {
		if !strings.Contains(string(got), lit) {
			t.Fatalf("literal %s was re-rounded: %s", lit, got)
		}
	}
}

func TestCanonicalizeJSONRejectsTrailingData(t *testing.T) {
	if _, err := CanonicalizeJSON([]byte(`{"a":1} {"b":2}`)); err == nil {
		t.Fatal("trailing document accepted")
	}
	if _, err := CanonicalizeJSON([]byte(`{"a":`)); err == nil {
		t.Fatal("truncated document accepted")
	}
}
