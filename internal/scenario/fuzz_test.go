package scenario

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// FuzzLoadScenario fuzzes the JSON scenario loader. Two invariants:
//
//  1. Malformed input returns an error — Load never panics, whatever
//     the bytes are.
//  2. Anything Load accepts survives a Save → Load round trip exactly:
//     the reloaded Scenario is deeply equal to the first (defaults are
//     applied by Load, so its output is a fixed point).
func FuzzLoadScenario(f *testing.F) {
	seeds := []string{
		// Minimal valid file.
		`{"name":"tiny","nodes":[[0,0],[200,0],[400,0]],"flows":[{"src":0,"dst":2}]}`,
		// Every field populated.
		`{"name":"full","description":"d","tx_range_m":300,"cs_range_m":600,
		  "nodes":[[0,0],[250,0]],
		  "flows":[{"src":0,"dst":1,"weight":2.5,"desired_rate_pps":50,
		            "packet_bytes":512,"start_s":10,"stop_s":60}]}`,
		// Fractional times (exercise the seconds conversion).
		`{"nodes":[[0,0],[1,1]],"flows":[{"src":0,"dst":1,"start_s":0.1,"stop_s":0.30000000000000004}]}`,
		// A full fault schedule: every kind, fractional times, unsorted.
		`{"nodes":[[0,0],[200,0],[400,0]],"flows":[{"src":0,"dst":2}],
		  "faults":[{"at_s":30,"kind":"node-down","node":1},
		            {"at_s":60,"kind":"node-up","node":1},
		            {"at_s":10.5,"kind":"link-degrade","from":0,"to":1,"loss_prob":0.3},
		            {"at_s":20,"kind":"link-restore","from":0,"to":1},
		            {"at_s":5,"kind":"node-degrade","node":2,"loss_prob":0.1},
		            {"at_s":6,"kind":"node-restore","node":2}]}`,
		// Fault schedules the loader must reject: bad kind, bad churn
		// sequencing, out-of-range node, stray loss probability.
		`{"nodes":[[0,0],[1,0]],"flows":[{"src":0,"dst":1}],"faults":[{"at_s":1,"kind":"node-melts","node":0}]}`,
		`{"nodes":[[0,0],[1,0]],"flows":[{"src":0,"dst":1}],"faults":[{"at_s":1,"kind":"node-up","node":0}]}`,
		`{"nodes":[[0,0],[1,0]],"flows":[{"src":0,"dst":1}],"faults":[{"at_s":1,"kind":"node-down","node":7}]}`,
		`{"nodes":[[0,0],[1,0]],"flows":[{"src":0,"dst":1}],"faults":[{"at_s":1,"kind":"node-down","node":0,"loss_prob":0.5}]}`,
		// Broken inputs the loader must reject gracefully.
		`{"nodes":[[0,0]],"flows":[{"src":0,"dst":5}]}`,
		`{"nodes":[[0,0],[1,0]],"flows":[{"src":0,"dst":1,"start_s":-3}]}`,
		`{"nodes":[[0,0],[1,0]],"flows":[{"src":0,"dst":1,"weight":-1}]}`,
		`{"nodes":[[0,0],[1,0]],"bogus":true}`,
		`{"nodes":[[0,0],[1,0]],"flows":[]} trailing garbage`,
		`[1,2,3]`,
		`not json at all`,
		``,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Load(bytes.NewReader(data))
		if err != nil {
			return // rejected cleanly — that is the contract
		}
		// Everything Load accepted must serialize...
		var buf bytes.Buffer
		if err := s.Save(&buf); err != nil {
			t.Fatalf("loaded scenario does not save: %v\ninput: %q", err, data)
		}
		// ...and reload to exactly the same value.
		reloaded, err := Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("saved scenario does not reload: %v\nsaved: %s\ninput: %q", err, buf.Bytes(), data)
		}
		if !reflect.DeepEqual(s, reloaded) {
			t.Fatalf("round trip not identical:\nfirst:    %#v\nreloaded: %#v\nsaved: %s", s, reloaded, buf.Bytes())
		}
	})
}

// FuzzFaultSchedule narrows the fuzz to the fault-schedule array: the
// fuzzed bytes are spliced into an otherwise fixed, valid scenario, so
// coverage concentrates on fault parsing and validation instead of
// being spent rediscovering the scenario envelope. Invariants match
// FuzzLoadScenario: no panics, and accepted schedules are a Save→Load
// fixed point.
func FuzzFaultSchedule(f *testing.F) {
	seeds := []string{
		`[]`,
		`[{"at_s":30,"kind":"node-down","node":1},{"at_s":60,"kind":"node-up","node":1}]`,
		`[{"at_s":10.25,"kind":"link-degrade","from":0,"to":1,"loss_prob":0.3},
		  {"at_s":20,"kind":"link-restore","from":0,"to":1}]`,
		`[{"at_s":5,"kind":"node-degrade","node":2,"loss_prob":0.001},
		  {"at_s":6,"kind":"node-restore","node":2}]`,
		`[{"at_s":1,"kind":"node-up","node":1}]`,
		`[{"at_s":1,"kind":"node-down","node":1},{"at_s":2,"kind":"node-down","node":1}]`,
		`[{"at_s":-1,"kind":"node-down","node":1}]`,
		`[{"at_s":1e300,"kind":"node-down","node":1}]`,
		`[{"at_s":1,"kind":"link-degrade","from":2,"to":2,"loss_prob":0.5}]`,
		`[{"kind":"node-down","node":0,"unknown_field":true}]`,
		`[null]`,
		`nonsense`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, faultsJSON []byte) {
		input := `{"nodes":[[0,0],[200,0],[400,0]],"flows":[{"src":0,"dst":2}],"faults":` +
			string(faultsJSON) + `}`
		s, err := Load(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := s.Save(&buf); err != nil {
			t.Fatalf("loaded scenario does not save: %v\nfaults: %q", err, faultsJSON)
		}
		reloaded, err := Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("saved scenario does not reload: %v\nsaved: %s", err, buf.Bytes())
		}
		if !reflect.DeepEqual(s, reloaded) {
			t.Fatalf("round trip not identical:\nfirst:    %#v\nreloaded: %#v", s, reloaded)
		}
	})
}

// FuzzMobilitySchedule splices the fuzzed bytes in as the "mobility"
// block of an otherwise fixed, valid scenario, concentrating coverage
// on mobility parsing and validation. Invariants match the other two
// fuzzers: Load never panics, and anything it accepts is a Save→Load
// fixed point (including the duration conversions and pinned lists).
func FuzzMobilitySchedule(f *testing.F) {
	seeds := []string{
		// Each model, minimal and fully populated.
		`{"model":"random-waypoint","epoch_s":1,"max_speed_mps":10}`,
		`{"model":"random-walk","epoch_s":2,"min_speed_mps":1,"max_speed_mps":5,
		  "min_x":0,"max_x":800,"min_y":-200,"max_y":200,"pinned":[0,2]}`,
		`{"model":"group","epoch_s":1,"max_speed_mps":8,"groups":2,"group_radius_m":100}`,
		`{"model":"rwp","epoch_s":0.5,"max_speed_mps":3,"pause_s":2.25,
		  "start_s":10,"stop_s":60.125}`,
		// Inputs the loader must reject: unknown model, bad durations,
		// bad speeds, empty field, bad groups, bad pinned entries.
		`{"model":"teleport","epoch_s":1,"max_speed_mps":10}`,
		`{"model":"random-walk","epoch_s":0,"max_speed_mps":10}`,
		`{"model":"random-walk","epoch_s":-1,"max_speed_mps":10}`,
		`{"model":"random-walk","epoch_s":1e300,"max_speed_mps":10}`,
		`{"model":"random-walk","epoch_s":1,"max_speed_mps":0}`,
		`{"model":"random-walk","epoch_s":1,"min_speed_mps":5,"max_speed_mps":2}`,
		`{"model":"random-walk","epoch_s":1,"min_speed_mps":-1,"max_speed_mps":2}`,
		`{"model":"random-walk","epoch_s":1,"max_speed_mps":10,"start_s":60,"stop_s":10}`,
		`{"model":"random-walk","epoch_s":1,"max_speed_mps":10,"min_x":10,"max_x":5,"max_y":1}`,
		`{"model":"group","epoch_s":1,"max_speed_mps":10}`,
		`{"model":"group","epoch_s":1,"max_speed_mps":10,"groups":9,"group_radius_m":50}`,
		`{"model":"random-walk","epoch_s":1,"max_speed_mps":10,"pinned":[-1]}`,
		`{"model":"random-walk","epoch_s":1,"max_speed_mps":10,"pinned":[1,1]}`,
		`{"model":"random-walk","epoch_s":1,"max_speed_mps":10,"bogus":true}`,
		`null`,
		`[]`,
		`nonsense`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, mobilityJSON []byte) {
		input := `{"nodes":[[0,0],[200,0],[400,0]],"flows":[{"src":0,"dst":2}],"mobility":` +
			string(mobilityJSON) + `}`
		s, err := Load(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := s.Save(&buf); err != nil {
			t.Fatalf("loaded scenario does not save: %v\nmobility: %q", err, mobilityJSON)
		}
		reloaded, err := Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("saved scenario does not reload: %v\nsaved: %s", err, buf.Bytes())
		}
		if !reflect.DeepEqual(s, reloaded) {
			t.Fatalf("round trip not identical:\nfirst:    %#v\nreloaded: %#v", s, reloaded)
		}
	})
}

// FuzzChurnSchedule splices the fuzzed bytes in as the "churn" block of
// an otherwise fixed, valid scenario, concentrating coverage on churn
// parsing and validation. Invariants match the other fuzzers: Load
// never panics, and anything it accepts — including the defaulted
// admission sub-block and the duration conversions — is a Save→Load
// fixed point.
func FuzzChurnSchedule(f *testing.F) {
	seeds := []string{
		// Each process, minimal and fully populated.
		`{"process":"poisson","rate_per_s":0.5}`,
		`{"process":"poisson","rate_per_s":2,"start_s":10,"stop_s":120.25,
		  "matrix":"gateway","gateway":2,"min_size_pkts":100,"max_size_pkts":5000,
		  "pareto_alpha":1.2,"weight":2,"desired_rate_pps":400,"packet_bytes":512,
		  "max_flows":64,"admission":{"min_share_pps":50,"headroom":0.9,"shed_after":2}}`,
		`{"process":"diurnal","rate_per_s":1,"diurnal_period_s":100,"diurnal_amplitude":0.8}`,
		`{"process":"poisson","rate_per_s":1,"matrix":"random"}`,
		`{"process":"poisson","rate_per_s":1,"admission":{"min_share_pps":10}}`,
		// Inputs the loader must reject: unknown process/matrix, bad
		// rates/windows/sizes, misplaced diurnal fields, bad admission.
		`{"process":"bursty","rate_per_s":1}`,
		`{"process":"poisson","rate_per_s":0}`,
		`{"process":"poisson","rate_per_s":-2}`,
		`{"process":"poisson","rate_per_s":1e300}`,
		`{"process":"poisson","rate_per_s":1,"start_s":60,"stop_s":10}`,
		`{"process":"poisson","rate_per_s":1,"start_s":1e300}`,
		`{"process":"diurnal","rate_per_s":1}`,
		`{"process":"diurnal","rate_per_s":1,"diurnal_period_s":100,"diurnal_amplitude":1.5}`,
		`{"process":"poisson","rate_per_s":1,"diurnal_amplitude":0.5}`,
		`{"process":"poisson","rate_per_s":1,"matrix":"broadcast"}`,
		`{"process":"poisson","rate_per_s":1,"gateway":9}`,
		`{"process":"poisson","rate_per_s":1,"min_size_pkts":100,"max_size_pkts":10}`,
		`{"process":"poisson","rate_per_s":1,"pareto_alpha":-1}`,
		`{"process":"poisson","rate_per_s":1,"weight":-1}`,
		`{"process":"poisson","rate_per_s":1,"max_flows":-1}`,
		`{"process":"poisson","rate_per_s":1,"admission":{"min_share_pps":-1}}`,
		`{"process":"poisson","rate_per_s":1,"admission":{"min_share_pps":10,"headroom":2}}`,
		`{"process":"poisson","rate_per_s":1,"bogus":true}`,
		`null`,
		`[]`,
		`nonsense`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, churnJSON []byte) {
		input := `{"nodes":[[0,0],[200,0],[400,0]],"flows":[{"src":0,"dst":2}],"churn":` +
			string(churnJSON) + `}`
		s, err := Load(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := s.Save(&buf); err != nil {
			t.Fatalf("loaded scenario does not save: %v\nchurn: %q", err, churnJSON)
		}
		reloaded, err := Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("saved scenario does not reload: %v\nsaved: %s", err, buf.Bytes())
		}
		if !reflect.DeepEqual(s, reloaded) {
			t.Fatalf("round trip not identical:\nfirst:    %#v\nreloaded: %#v", s, reloaded)
		}
	})
}
