package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"

	"gmp/internal/admission"
	"gmp/internal/churn"
	"gmp/internal/faults"
	"gmp/internal/flow"
	"gmp/internal/geom"
	"gmp/internal/mobility"
	"gmp/internal/packet"
	"gmp/internal/topology"
)

// fileFormat is the on-disk JSON representation of a scenario.
//
//	{
//	  "name": "my-net",
//	  "tx_range_m": 250,
//	  "nodes": [[0,0], [200,0], [400,0]],
//	  "flows": [
//	    {"src": 0, "dst": 2, "weight": 2},
//	    {"src": 1, "dst": 2, "start_s": 100, "stop_s": 300}
//	  ]
//	}
//
// Omitted flow fields default to the paper's setup: weight 1, desired
// rate 800 pkt/s, 1024-byte packets, active for the whole session.
type fileFormat struct {
	Name        string        `json:"name"`
	Description string        `json:"description,omitempty"`
	TxRangeM    float64       `json:"tx_range_m,omitempty"`
	CSRangeM    float64       `json:"cs_range_m,omitempty"`
	Nodes       [][2]float64  `json:"nodes"`
	Flows       []fileFlow    `json:"flows"`
	Faults      []fileFault   `json:"faults,omitempty"`
	Mobility    *fileMobility `json:"mobility,omitempty"`
	Churn       *fileChurn    `json:"churn,omitempty"`
}

type fileFlow struct {
	Src         int     `json:"src"`
	Dst         int     `json:"dst"`
	Weight      float64 `json:"weight,omitempty"`
	DesiredRate float64 `json:"desired_rate_pps,omitempty"`
	PacketBytes int     `json:"packet_bytes,omitempty"`
	StartS      float64 `json:"start_s,omitempty"`
	StopS       float64 `json:"stop_s,omitempty"`
}

// fileFault is one fault-schedule entry. kind selects which of the
// optional fields apply (see internal/faults):
//
//	{"at_s": 60, "kind": "node-down", "node": 2}
//	{"at_s": 120, "kind": "node-up", "node": 2}
//	{"at_s": 30, "kind": "link-degrade", "from": 0, "to": 1, "loss_prob": 0.4}
//	{"at_s": 45, "kind": "node-degrade", "node": 3, "loss_prob": 0.2}
type fileFault struct {
	AtS      float64 `json:"at_s"`
	Kind     string  `json:"kind"`
	Node     int     `json:"node,omitempty"`
	From     int     `json:"from,omitempty"`
	To       int     `json:"to,omitempty"`
	LossProb float64 `json:"loss_prob,omitempty"`
}

// fileMobility is the optional node-motion block (see internal/mobility):
//
//	{"model": "random-waypoint", "epoch_s": 1, "min_speed_mps": 1,
//	 "max_speed_mps": 10, "pause_s": 2,
//	 "min_x": 0, "max_x": 800, "min_y": -200, "max_y": 200,
//	 "pinned": [0, 5]}
//
// Bounds omitted (all four zero) are derived from the bounding box of
// the node placement. "group" additionally takes groups and
// group_radius_m. Pinned nodes never move.
type fileMobility struct {
	Model       string  `json:"model"`
	EpochS      float64 `json:"epoch_s"`
	StartS      float64 `json:"start_s,omitempty"`
	StopS       float64 `json:"stop_s,omitempty"`
	MinSpeed    float64 `json:"min_speed_mps,omitempty"`
	MaxSpeed    float64 `json:"max_speed_mps"`
	PauseS      float64 `json:"pause_s,omitempty"`
	MinX        float64 `json:"min_x,omitempty"`
	MinY        float64 `json:"min_y,omitempty"`
	MaxX        float64 `json:"max_x,omitempty"`
	MaxY        float64 `json:"max_y,omitempty"`
	Groups      int     `json:"groups,omitempty"`
	GroupRadius float64 `json:"group_radius_m,omitempty"`
	Pinned      []int   `json:"pinned,omitempty"`
}

// fileChurn is the optional flow-churn block (see internal/churn):
//
//	{"process": "poisson", "rate_per_s": 0.5,
//	 "matrix": "gateway", "gateway": 0,
//	 "min_size_pkts": 4000, "max_size_pkts": 400000, "pareto_alpha": 1.5,
//	 "admission": {"min_share_pps": 50, "headroom": 0.9, "shed_after": 3}}
//
// "diurnal" additionally takes diurnal_period_s and diurnal_amplitude.
// Omitted fields default per internal/churn; omitting "admission"
// admits every arrival.
type fileChurn struct {
	Process          string         `json:"process"`
	RatePerS         float64        `json:"rate_per_s"`
	StartS           float64        `json:"start_s,omitempty"`
	StopS            float64        `json:"stop_s,omitempty"`
	DiurnalPeriodS   float64        `json:"diurnal_period_s,omitempty"`
	DiurnalAmplitude float64        `json:"diurnal_amplitude,omitempty"`
	ParetoAlpha      float64        `json:"pareto_alpha,omitempty"`
	MinSizePkts      int64          `json:"min_size_pkts,omitempty"`
	MaxSizePkts      int64          `json:"max_size_pkts,omitempty"`
	Matrix           string         `json:"matrix,omitempty"`
	Gateway          int            `json:"gateway,omitempty"`
	Weight           float64        `json:"weight,omitempty"`
	DesiredRate      float64        `json:"desired_rate_pps,omitempty"`
	PacketBytes      int            `json:"packet_bytes,omitempty"`
	MaxFlows         int            `json:"max_flows,omitempty"`
	Admission        *fileAdmission `json:"admission,omitempty"`
}

type fileAdmission struct {
	MinSharePPS float64 `json:"min_share_pps"`
	Headroom    float64 `json:"headroom,omitempty"`
	ShedAfter   int     `json:"shed_after,omitempty"`
}

// maxScheduleSeconds bounds flow start/stop times in scenario files.
// The limit (11.5 simulated days) is far beyond any session the tools
// run, and it keeps the seconds → time.Duration conversion exact: below
// 1e15 ns the float64 rounding error stays under half a nanosecond, so
// Save → Load round-trips Start and Stop bit-for-bit.
const maxScheduleSeconds = 1e6

// Load reads a scenario from its JSON representation. Malformed input
// of any kind — syntax errors, unknown fields, out-of-range node
// references, unrepresentable times, trailing garbage — yields an
// error, never a panic.
func Load(r io.Reader) (Scenario, error) {
	var ff fileFormat
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&ff); err != nil {
		return Scenario{}, fmt.Errorf("scenario: decoding: %w", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return Scenario{}, fmt.Errorf("scenario: trailing data after document")
	}
	if len(ff.Nodes) == 0 {
		return Scenario{}, fmt.Errorf("scenario: file %q has no nodes", ff.Name)
	}
	if ff.TxRangeM < 0 || ff.CSRangeM < 0 {
		return Scenario{}, fmt.Errorf("scenario: negative radio range (%v m, %v m)", ff.TxRangeM, ff.CSRangeM)
	}
	if ff.TxRangeM == 0 {
		ff.TxRangeM = topology.DefaultConfig().TxRange
	}
	if ff.CSRangeM == 0 {
		ff.CSRangeM = ff.TxRangeM
	}
	s := Scenario{
		Name:        ff.Name,
		Description: ff.Description,
		Radio:       topology.Config{TxRange: ff.TxRangeM, CSRange: ff.CSRangeM},
	}
	for _, n := range ff.Nodes {
		s.Positions = append(s.Positions, geom.Point{X: n[0], Y: n[1]})
	}
	for i, f := range ff.Flows {
		if f.Src < 0 || f.Src >= len(ff.Nodes) || f.Dst < 0 || f.Dst >= len(ff.Nodes) {
			return Scenario{}, fmt.Errorf("scenario: flow %d endpoints (%d,%d) outside nodes [0,%d)", i, f.Src, f.Dst, len(ff.Nodes))
		}
		if f.StartS < 0 || f.StartS > maxScheduleSeconds || f.StopS < 0 || f.StopS > maxScheduleSeconds {
			return Scenario{}, fmt.Errorf("scenario: flow %d start/stop outside [0, %g] s", i, float64(maxScheduleSeconds))
		}
		spec := flow.Spec{
			ID:          packet.FlowID(i),
			Src:         topology.NodeID(f.Src),
			Dst:         topology.NodeID(f.Dst),
			Weight:      f.Weight,
			DesiredRate: f.DesiredRate,
			SizeBytes:   f.PacketBytes,
			Start:       secondsToDuration(f.StartS),
			Stop:        secondsToDuration(f.StopS),
		}
		if spec.Weight == 0 {
			spec.Weight = 1
		}
		if spec.DesiredRate == 0 {
			spec.DesiredRate = DefaultDesiredRate
		}
		if spec.SizeBytes == 0 {
			spec.SizeBytes = DefaultPacketBytes
		}
		if err := spec.Validate(); err != nil {
			return Scenario{}, fmt.Errorf("scenario: flow %d: %w", i, err)
		}
		s.Flows = append(s.Flows, spec)
	}
	for i, f := range ff.Faults {
		if f.AtS < 0 || f.AtS > maxScheduleSeconds {
			return Scenario{}, fmt.Errorf("scenario: fault %d time outside [0, %g] s", i, float64(maxScheduleSeconds))
		}
		kind, err := faults.ParseKind(f.Kind)
		if err != nil {
			return Scenario{}, fmt.Errorf("scenario: fault %d: %w", i, err)
		}
		s.Faults = append(s.Faults, faults.Event{
			At:       secondsToDuration(f.AtS),
			Kind:     kind,
			Node:     topology.NodeID(f.Node),
			From:     topology.NodeID(f.From),
			To:       topology.NodeID(f.To),
			LossProb: f.LossProb,
		})
	}
	// Event.Validate rejects fields the kind does not use, so a schedule
	// that Load accepts is already canonical and Save → Load is a fixed
	// point; ValidateSchedule additionally checks churn sequencing.
	if err := faults.ValidateSchedule(s.Faults, len(ff.Nodes)); err != nil {
		return Scenario{}, fmt.Errorf("scenario: %w", err)
	}
	if ff.Mobility != nil {
		cfg, err := ff.Mobility.toConfig(len(ff.Nodes))
		if err != nil {
			return Scenario{}, err
		}
		s.Mobility = cfg
	}
	if ff.Churn != nil {
		cfg, err := ff.Churn.toConfig(len(ff.Nodes))
		if err != nil {
			return Scenario{}, err
		}
		s.Churn = cfg
	}
	return s, nil
}

// toConfig converts the JSON churn block to a validated config with
// defaults materialized (so Save → Load is a fixed point).
func (fc *fileChurn) toConfig(numNodes int) (*churn.Config, error) {
	process, err := churn.ParseProcess(fc.Process)
	if err != nil {
		return nil, fmt.Errorf("scenario: churn: %w", err)
	}
	matrix := churn.Gateway
	if fc.Matrix != "" {
		if matrix, err = churn.ParseMatrix(fc.Matrix); err != nil {
			return nil, fmt.Errorf("scenario: churn: %w", err)
		}
	}
	for _, t := range []struct {
		name string
		v    float64
	}{
		{"start_s", fc.StartS},
		{"stop_s", fc.StopS},
		{"diurnal_period_s", fc.DiurnalPeriodS},
	} {
		if t.v < 0 || t.v > maxScheduleSeconds {
			return nil, fmt.Errorf("scenario: churn %s outside [0, %g] s", t.name, float64(maxScheduleSeconds))
		}
	}
	cfg := churn.Config{
		Process:          process,
		Rate:             fc.RatePerS,
		Start:            secondsToDuration(fc.StartS),
		Stop:             secondsToDuration(fc.StopS),
		DiurnalPeriod:    secondsToDuration(fc.DiurnalPeriodS),
		DiurnalAmplitude: fc.DiurnalAmplitude,
		Alpha:            fc.ParetoAlpha,
		MinSizePkts:      fc.MinSizePkts,
		MaxSizePkts:      fc.MaxSizePkts,
		Matrix:           matrix,
		GatewayNode:      topology.NodeID(fc.Gateway),
		Weight:           fc.Weight,
		DesiredRate:      fc.DesiredRate,
		SizeBytes:        fc.PacketBytes,
		MaxFlows:         fc.MaxFlows,
	}
	if fc.Admission != nil {
		cfg.Admission = &admission.Params{
			MinShare:  fc.Admission.MinSharePPS,
			Headroom:  fc.Admission.Headroom,
			ShedAfter: fc.Admission.ShedAfter,
		}
	}
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(numNodes); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return &cfg, nil
}

// toConfig converts the JSON mobility block to a validated config.
func (fm *fileMobility) toConfig(numNodes int) (*mobility.Config, error) {
	model, err := mobility.ParseModel(fm.Model)
	if err != nil {
		return nil, fmt.Errorf("scenario: mobility: %w", err)
	}
	for _, t := range []struct {
		name string
		v    float64
	}{
		{"epoch_s", fm.EpochS},
		{"start_s", fm.StartS},
		{"stop_s", fm.StopS},
		{"pause_s", fm.PauseS},
	} {
		if t.v < 0 || t.v > maxScheduleSeconds {
			return nil, fmt.Errorf("scenario: mobility %s outside [0, %g] s", t.name, float64(maxScheduleSeconds))
		}
	}
	cfg := &mobility.Config{
		Model:       model,
		Epoch:       secondsToDuration(fm.EpochS),
		Start:       secondsToDuration(fm.StartS),
		Stop:        secondsToDuration(fm.StopS),
		MinSpeed:    fm.MinSpeed,
		MaxSpeed:    fm.MaxSpeed,
		Pause:       secondsToDuration(fm.PauseS),
		MinX:        fm.MinX,
		MinY:        fm.MinY,
		MaxX:        fm.MaxX,
		MaxY:        fm.MaxY,
		Groups:      fm.Groups,
		GroupRadius: fm.GroupRadius,
	}
	for _, p := range fm.Pinned {
		cfg.Pinned = append(cfg.Pinned, topology.NodeID(p))
	}
	if err := cfg.Validate(numNodes); err != nil {
		return nil, fmt.Errorf("scenario: mobility: %w", err)
	}
	return cfg, nil
}

// secondsToDuration converts a seconds value from a scenario file to a
// Duration, rounding to the nearest nanosecond. Truncation would drift
// downward on every Save → Load cycle (1/1e9 is not a binary fraction);
// rounding makes the conversion a bijection for |t| ≤ maxScheduleSeconds.
func secondsToDuration(s float64) time.Duration {
	return time.Duration(math.Round(s * float64(time.Second)))
}

// Save writes the scenario as indented JSON.
func (s Scenario) Save(w io.Writer) error {
	ff := fileFormat{
		Name:        s.Name,
		Description: s.Description,
		TxRangeM:    s.Radio.TxRange,
		CSRangeM:    s.Radio.CSRange,
	}
	for _, p := range s.Positions {
		ff.Nodes = append(ff.Nodes, [2]float64{p.X, p.Y})
	}
	for _, f := range s.Flows {
		ff.Flows = append(ff.Flows, fileFlow{
			Src:         int(f.Src),
			Dst:         int(f.Dst),
			Weight:      f.Weight,
			DesiredRate: f.DesiredRate,
			PacketBytes: f.SizeBytes,
			StartS:      f.Start.Seconds(),
			StopS:       f.Stop.Seconds(),
		})
	}
	for _, e := range s.Faults {
		ff.Faults = append(ff.Faults, fileFault{
			AtS:      e.At.Seconds(),
			Kind:     e.Kind.String(),
			Node:     int(e.Node),
			From:     int(e.From),
			To:       int(e.To),
			LossProb: e.LossProb,
		})
	}
	if m := s.Mobility; m != nil {
		fm := &fileMobility{
			Model:       m.Model.String(),
			EpochS:      m.Epoch.Seconds(),
			StartS:      m.Start.Seconds(),
			StopS:       m.Stop.Seconds(),
			MinSpeed:    m.MinSpeed,
			MaxSpeed:    m.MaxSpeed,
			PauseS:      m.Pause.Seconds(),
			MinX:        m.MinX,
			MinY:        m.MinY,
			MaxX:        m.MaxX,
			MaxY:        m.MaxY,
			Groups:      m.Groups,
			GroupRadius: m.GroupRadius,
		}
		for _, p := range m.Pinned {
			fm.Pinned = append(fm.Pinned, int(p))
		}
		ff.Mobility = fm
	}
	if s.Churn != nil {
		// Save the defaulted form: a hand-built config with zero optional
		// fields serializes to the same canonical block Load produces.
		c := s.Churn.WithDefaults()
		fc := &fileChurn{
			Process:          c.Process.String(),
			RatePerS:         c.Rate,
			StartS:           c.Start.Seconds(),
			StopS:            c.Stop.Seconds(),
			DiurnalPeriodS:   c.DiurnalPeriod.Seconds(),
			DiurnalAmplitude: c.DiurnalAmplitude,
			ParetoAlpha:      c.Alpha,
			MinSizePkts:      c.MinSizePkts,
			MaxSizePkts:      c.MaxSizePkts,
			Matrix:           c.Matrix.String(),
			Gateway:          int(c.GatewayNode),
			Weight:           c.Weight,
			DesiredRate:      c.DesiredRate,
			PacketBytes:      c.SizeBytes,
			MaxFlows:         c.MaxFlows,
		}
		if a := c.Admission; a != nil {
			fc.Admission = &fileAdmission{
				MinSharePPS: a.MinShare,
				Headroom:    a.Headroom,
				ShedAfter:   a.ShedAfter,
			}
		}
		ff.Churn = fc
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(ff); err != nil {
		return fmt.Errorf("scenario: encoding: %w", err)
	}
	return nil
}
