package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"gmp/internal/flow"
	"gmp/internal/geom"
	"gmp/internal/packet"
	"gmp/internal/topology"
)

// fileFormat is the on-disk JSON representation of a scenario.
//
//	{
//	  "name": "my-net",
//	  "tx_range_m": 250,
//	  "nodes": [[0,0], [200,0], [400,0]],
//	  "flows": [
//	    {"src": 0, "dst": 2, "weight": 2},
//	    {"src": 1, "dst": 2, "start_s": 100, "stop_s": 300}
//	  ]
//	}
//
// Omitted flow fields default to the paper's setup: weight 1, desired
// rate 800 pkt/s, 1024-byte packets, active for the whole session.
type fileFormat struct {
	Name        string       `json:"name"`
	Description string       `json:"description,omitempty"`
	TxRangeM    float64      `json:"tx_range_m,omitempty"`
	CSRangeM    float64      `json:"cs_range_m,omitempty"`
	Nodes       [][2]float64 `json:"nodes"`
	Flows       []fileFlow   `json:"flows"`
}

type fileFlow struct {
	Src         int     `json:"src"`
	Dst         int     `json:"dst"`
	Weight      float64 `json:"weight,omitempty"`
	DesiredRate float64 `json:"desired_rate_pps,omitempty"`
	PacketBytes int     `json:"packet_bytes,omitempty"`
	StartS      float64 `json:"start_s,omitempty"`
	StopS       float64 `json:"stop_s,omitempty"`
}

// Load reads a scenario from its JSON representation.
func Load(r io.Reader) (Scenario, error) {
	var ff fileFormat
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&ff); err != nil {
		return Scenario{}, fmt.Errorf("scenario: decoding: %w", err)
	}
	if len(ff.Nodes) == 0 {
		return Scenario{}, fmt.Errorf("scenario: file %q has no nodes", ff.Name)
	}
	if ff.TxRangeM == 0 {
		ff.TxRangeM = topology.DefaultConfig().TxRange
	}
	if ff.CSRangeM == 0 {
		ff.CSRangeM = ff.TxRangeM
	}
	s := Scenario{
		Name:        ff.Name,
		Description: ff.Description,
		Radio:       topology.Config{TxRange: ff.TxRangeM, CSRange: ff.CSRangeM},
	}
	for _, n := range ff.Nodes {
		s.Positions = append(s.Positions, geom.Point{X: n[0], Y: n[1]})
	}
	for i, f := range ff.Flows {
		spec := flow.Spec{
			ID:          packet.FlowID(i),
			Src:         topology.NodeID(f.Src),
			Dst:         topology.NodeID(f.Dst),
			Weight:      f.Weight,
			DesiredRate: f.DesiredRate,
			SizeBytes:   f.PacketBytes,
			Start:       time.Duration(f.StartS * float64(time.Second)),
			Stop:        time.Duration(f.StopS * float64(time.Second)),
		}
		if spec.Weight == 0 {
			spec.Weight = 1
		}
		if spec.DesiredRate == 0 {
			spec.DesiredRate = DefaultDesiredRate
		}
		if spec.SizeBytes == 0 {
			spec.SizeBytes = DefaultPacketBytes
		}
		if err := spec.Validate(); err != nil {
			return Scenario{}, fmt.Errorf("scenario: flow %d: %w", i, err)
		}
		s.Flows = append(s.Flows, spec)
	}
	return s, nil
}

// Save writes the scenario as indented JSON.
func (s Scenario) Save(w io.Writer) error {
	ff := fileFormat{
		Name:        s.Name,
		Description: s.Description,
		TxRangeM:    s.Radio.TxRange,
		CSRangeM:    s.Radio.CSRange,
	}
	for _, p := range s.Positions {
		ff.Nodes = append(ff.Nodes, [2]float64{p.X, p.Y})
	}
	for _, f := range s.Flows {
		ff.Flows = append(ff.Flows, fileFlow{
			Src:         int(f.Src),
			Dst:         int(f.Dst),
			Weight:      f.Weight,
			DesiredRate: f.DesiredRate,
			PacketBytes: f.SizeBytes,
			StartS:      f.Start.Seconds(),
			StopS:       f.Stop.Seconds(),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(ff); err != nil {
		return fmt.Errorf("scenario: encoding: %w", err)
	}
	return nil
}
