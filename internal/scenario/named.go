package scenario

import (
	"fmt"
	"sort"
)

// builders maps the registry names accepted by Named to their
// constructors. Parametric generators are registered at representative
// default sizes; callers needing other sizes construct them directly
// (or, over the gmpd API, submit the full scenario JSON).
var builders = map[string]func() (Scenario, error){
	"fig1":          func() (Scenario, error) { return Fig1(), nil },
	"fig2":          func() (Scenario, error) { return Fig2([4]float64{1, 1, 1, 1}), nil },
	"fig2-weighted": func() (Scenario, error) { return Fig2([4]float64{1, 2, 1, 3}), nil },
	"fig3":          func() (Scenario, error) { return Fig3(), nil },
	"fig4":          func() (Scenario, error) { return Fig4(), nil },
	"chain":         func() (Scenario, error) { return Chain(5, 200) },
	"cross":         func() (Scenario, error) { return Cross(2, 200) },
	"star":          func() (Scenario, error) { return Star(4, 200) },
	"mesh-gateway":  func() (Scenario, error) { return MeshGateway(4, 4, 6, 220, 1) },
	"city":          func() (Scenario, error) { return City(2000, 8, 24, 220, 1) },
	"vehicular":     func() (Scenario, error) { return Vehicular(6, 180, 12) },
	"drones":        func() (Scenario, error) { return DroneSwarm(9, 3, 80) },
}

// Named builds the registered scenario with the given name. It is the
// lookup behind gmpd's scenario-by-name job submissions.
func Named(name string) (Scenario, error) {
	b, ok := builders[name]
	if !ok {
		return Scenario{}, fmt.Errorf("scenario: unknown scenario %q (known: %v)", name, Names())
	}
	return b()
}

// Names lists the registry names in sorted order.
func Names() []string {
	names := make([]string, 0, len(builders))
	for n := range builders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
