package scenario

import (
	"testing"

	"gmp/internal/topology"
)

func TestVehicular(t *testing.T) {
	s, err := Vehicular(6, 180, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Positions) != 7 { // 6 vehicles + RSU
		t.Fatalf("got %d nodes, want 7", len(s.Positions))
	}
	if s.Mobility == nil {
		t.Fatal("vehicular scenario has no mobility model")
	}
	if err := s.Mobility.Validate(len(s.Positions)); err != nil {
		t.Fatalf("mobility config invalid: %v", err)
	}
	if got := s.Mobility.Pinned; len(got) != 1 || got[0] != topology.NodeID(6) {
		t.Fatalf("RSU not pinned: %v", got)
	}
	topo, err := s.Topology()
	if err != nil {
		t.Fatal(err)
	}
	if !topo.Connected() {
		t.Fatal("initial vehicular topology is disconnected")
	}
	for _, bad := range []struct {
		n              int
		spacing, speed float64
	}{
		{1, 180, 12}, {6, 0, 12}, {6, 180, 0},
	} {
		if _, err := Vehicular(bad.n, bad.spacing, bad.speed); err == nil {
			t.Fatalf("Vehicular(%d,%g,%g) accepted", bad.n, bad.spacing, bad.speed)
		}
	}
}

func TestDroneSwarm(t *testing.T) {
	s, err := DroneSwarm(9, 3, 80)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Positions) != 10 { // ground station + 9 drones
		t.Fatalf("got %d nodes, want 10", len(s.Positions))
	}
	if len(s.Flows) != 3 { // one reporter per group
		t.Fatalf("got %d flows, want 3", len(s.Flows))
	}
	for _, f := range s.Flows {
		if f.Dst != 0 {
			t.Fatalf("flow %v does not report to the ground station", f)
		}
	}
	if s.Mobility == nil {
		t.Fatal("drone swarm has no mobility model")
	}
	if err := s.Mobility.Validate(len(s.Positions)); err != nil {
		t.Fatalf("mobility config invalid: %v", err)
	}
	topo, err := s.Topology()
	if err != nil {
		t.Fatal(err)
	}
	if !topo.Connected() {
		t.Fatal("initial swarm topology is disconnected")
	}
	for _, bad := range []struct {
		n, groups int
		radius    float64
	}{
		{0, 1, 80}, {9, 0, 80}, {9, 10, 80}, {9, 3, 0},
	} {
		if _, err := DroneSwarm(bad.n, bad.groups, bad.radius); err == nil {
			t.Fatalf("DroneSwarm(%d,%d,%g) accepted", bad.n, bad.groups, bad.radius)
		}
	}
}

func TestNamedRegistry(t *testing.T) {
	for _, name := range Names() {
		s, err := Named(name)
		if err != nil {
			t.Fatalf("Named(%q): %v", name, err)
		}
		if len(s.Positions) == 0 {
			t.Fatalf("Named(%q) has no nodes", name)
		}
		if _, err := s.CanonicalJSON(); err != nil {
			t.Fatalf("Named(%q) does not canonicalize: %v", name, err)
		}
	}
	if _, err := Named("no-such-scenario"); err == nil {
		t.Fatal("unknown name accepted")
	}
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted: %v", names)
		}
	}
}
