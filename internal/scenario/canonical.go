package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// CanonicalJSON returns a canonical, deterministic serialization of the
// scenario: the Save form (defaults materialized, durations normalized
// to seconds with exact nanosecond round-trip) re-encoded compactly
// with every object's keys sorted. Two scenarios have equal
// CanonicalJSON iff Save writes them identically up to key order, so
// the bytes are a content address: the gmpd result cache hashes them
// (with the run config and seed) to decide whether a simulation has
// already been computed.
//
// The encoding is a fixed point: Load(CanonicalJSON(s)) canonicalizes
// back to the same bytes.
func (s Scenario) CanonicalJSON() ([]byte, error) {
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		return nil, err
	}
	out, err := CanonicalizeJSON(buf.Bytes())
	if err != nil {
		return nil, fmt.Errorf("scenario: canonicalizing: %w", err)
	}
	return out, nil
}

// CanonicalizeJSON rewrites a JSON document into its canonical form:
// compact, object keys sorted lexicographically, number literals
// preserved verbatim (no float re-rounding; decoding uses json.Number).
// Any two semantically equal documents whose number literals match
// canonicalize to identical bytes. gmpd uses it on job configuration
// blocks so that field order in a client's request does not change the
// cache key.
func CanonicalizeJSON(data []byte) ([]byte, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return nil, err
	}
	if _, err := dec.Token(); err != io.EOF {
		return nil, fmt.Errorf("trailing data after document")
	}
	// encoding/json sorts map keys and emits json.Number literals
	// verbatim, which is exactly the canonical form.
	return json.Marshal(v)
}
