package scenario

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"gmp/internal/faults"
	"gmp/internal/mobility"
	"gmp/internal/topology"
)

func TestLoadMinimalFile(t *testing.T) {
	input := `{
	  "name": "tiny",
	  "nodes": [[0,0], [200,0], [400,0]],
	  "flows": [{"src": 0, "dst": 2}]
	}`
	s, err := Load(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "tiny" || len(s.Positions) != 3 || len(s.Flows) != 1 {
		t.Fatalf("loaded %+v", s)
	}
	f := s.Flows[0]
	if f.Weight != 1 || f.DesiredRate != DefaultDesiredRate || f.SizeBytes != DefaultPacketBytes {
		t.Errorf("defaults not applied: %+v", f)
	}
	if s.Radio.TxRange != 250 || s.Radio.CSRange != 250 {
		t.Errorf("radio defaults: %+v", s.Radio)
	}
}

func TestLoadFullFile(t *testing.T) {
	input := `{
	  "name": "full",
	  "description": "d",
	  "tx_range_m": 300,
	  "cs_range_m": 600,
	  "nodes": [[0,0], [250,0]],
	  "flows": [{"src": 0, "dst": 1, "weight": 2.5,
	             "desired_rate_pps": 50, "packet_bytes": 512,
	             "start_s": 10, "stop_s": 60}]
	}`
	s, err := Load(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	f := s.Flows[0]
	if f.Weight != 2.5 || f.DesiredRate != 50 || f.SizeBytes != 512 {
		t.Errorf("flow fields: %+v", f)
	}
	if f.Start != 10*time.Second || f.Stop != 60*time.Second {
		t.Errorf("churn window: %v-%v", f.Start, f.Stop)
	}
	if s.Radio.CSRange != 600 {
		t.Errorf("cs range: %v", s.Radio.CSRange)
	}
}

func TestLoadRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"no nodes":         `{"name": "x", "flows": []}`,
		"unknown field":    `{"name": "x", "nodes": [[0,0]], "bogus": 1}`,
		"bad flow":         `{"name":"x","nodes":[[0,0],[1,0]],"flows":[{"src":0,"dst":0}]}`,
		"not json":         `hello`,
		"src out of range": `{"nodes":[[0,0],[1,0]],"flows":[{"src":5,"dst":1}]}`,
		"negative src":     `{"nodes":[[0,0],[1,0]],"flows":[{"src":-1,"dst":1}]}`,
		"negative start":   `{"nodes":[[0,0],[1,0]],"flows":[{"src":0,"dst":1,"start_s":-2}]}`,
		"huge stop":        `{"nodes":[[0,0],[1,0]],"flows":[{"src":0,"dst":1,"stop_s":1e18}]}`,
		"negative range":   `{"tx_range_m":-250,"nodes":[[0,0],[1,0]],"flows":[{"src":0,"dst":1}]}`,
		"trailing data":    `{"nodes":[[0,0],[1,0]],"flows":[{"src":0,"dst":1}]} extra`,
	}
	for name, input := range cases {
		if _, err := Load(strings.NewReader(input)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	orig := Fig1()
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Name != orig.Name || len(loaded.Positions) != len(orig.Positions) {
		t.Fatalf("round trip lost structure: %+v", loaded)
	}
	for i := range orig.Positions {
		if loaded.Positions[i] != orig.Positions[i] {
			t.Fatalf("position %d: %v != %v", i, loaded.Positions[i], orig.Positions[i])
		}
	}
	for i := range orig.Flows {
		if loaded.Flows[i] != orig.Flows[i] {
			t.Fatalf("flow %d: %+v != %+v", i, loaded.Flows[i], orig.Flows[i])
		}
	}
}

func TestLoadFaultSchedule(t *testing.T) {
	input := `{
	  "name": "faulted",
	  "nodes": [[0,0], [200,0], [400,0]],
	  "flows": [{"src": 0, "dst": 2}],
	  "faults": [
	    {"at_s": 30, "kind": "node-down", "node": 1},
	    {"at_s": 60, "kind": "node-up", "node": 1},
	    {"at_s": 10, "kind": "link-degrade", "from": 0, "to": 1, "loss_prob": 0.3},
	    {"at_s": 20, "kind": "link-restore", "from": 0, "to": 1},
	    {"at_s": 5.5, "kind": "node-degrade", "node": 2, "loss_prob": 0.1},
	    {"at_s": 6, "kind": "node-restore", "node": 2}
	  ]
	}`
	s, err := Load(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Faults) != 6 {
		t.Fatalf("loaded %d faults, want 6", len(s.Faults))
	}
	if e := s.Faults[0]; e.At != 30*time.Second || e.Kind != faults.NodeDown || e.Node != 1 {
		t.Errorf("fault 0: %+v", e)
	}
	if e := s.Faults[2]; e.From != 0 || e.To != 1 || e.LossProb != 0.3 {
		t.Errorf("fault 2: %+v", e)
	}
	if e := s.Faults[4]; e.At != 5500*time.Millisecond {
		t.Errorf("fault 4 time: %v", e.At)
	}
}

func TestLoadRejectsBadFaults(t *testing.T) {
	header := `{"nodes":[[0,0],[200,0]],"flows":[{"src":0,"dst":1}],"faults":[`
	cases := map[string]string{
		"unknown kind":     `{"at_s":1,"kind":"node-explodes","node":1}`,
		"negative time":    `{"at_s":-1,"kind":"node-down","node":1}`,
		"huge time":        `{"at_s":1e18,"kind":"node-down","node":1}`,
		"node range":       `{"at_s":1,"kind":"node-down","node":2}`,
		"stray loss":       `{"at_s":1,"kind":"node-down","node":1,"loss_prob":0.5}`,
		"missing loss":     `{"at_s":1,"kind":"link-degrade","from":0,"to":1}`,
		"loss of 1":        `{"at_s":1,"kind":"link-degrade","from":0,"to":1,"loss_prob":1}`,
		"self link":        `{"at_s":1,"kind":"link-degrade","from":1,"to":1,"loss_prob":0.5}`,
		"unknown field":    `{"at_s":1,"kind":"node-down","node":1,"bogus":2}`,
		"double crash":     `{"at_s":1,"kind":"node-down","node":1},{"at_s":2,"kind":"node-down","node":1}`,
		"revive live node": `{"at_s":1,"kind":"node-up","node":1}`,
	}
	for name, body := range cases {
		if _, err := Load(strings.NewReader(header + body + `]}`)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestSaveLoadRoundTripWithFaults(t *testing.T) {
	orig := Fig2([4]float64{1, 1, 1, 1}).WithFaults([]faults.Event{
		{At: 30 * time.Second, Kind: faults.NodeDown, Node: 1},
		{At: 60 * time.Second, Kind: faults.NodeUp, Node: 1},
		{At: 1500 * time.Millisecond, Kind: faults.LinkDegrade, From: 0, To: 1, LossProb: 0.25},
	})
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Faults) != len(orig.Faults) {
		t.Fatalf("round trip lost faults: %+v", loaded.Faults)
	}
	for i := range orig.Faults {
		if loaded.Faults[i] != orig.Faults[i] {
			t.Errorf("fault %d: %+v != %+v", i, loaded.Faults[i], orig.Faults[i])
		}
	}
}

func TestSaveLoadRoundTripWithMobility(t *testing.T) {
	orig := Fig3().WithMobility(&mobility.Config{
		Model:    mobility.RandomWaypoint,
		Epoch:    1500 * time.Millisecond,
		Start:    10 * time.Second,
		Stop:     90 * time.Second,
		MinSpeed: 1,
		MaxSpeed: 12.5,
		Pause:    250 * time.Millisecond,
		MinX:     -100, MaxX: 700, MinY: -200, MaxY: 200,
		Pinned: []topology.NodeID{3},
	})
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Mobility == nil || !reflect.DeepEqual(loaded.Mobility, orig.Mobility) {
		t.Fatalf("mobility round trip:\norig:   %+v\nloaded: %+v", orig.Mobility, loaded.Mobility)
	}
}

func TestLoadRejectsBadMobility(t *testing.T) {
	cases := []string{
		`{"model":"teleport","epoch_s":1,"max_speed_mps":10}`,
		`{"model":"random-walk","epoch_s":0,"max_speed_mps":10}`,
		`{"model":"random-walk","epoch_s":1e300,"max_speed_mps":10}`,
		`{"model":"random-walk","epoch_s":1,"max_speed_mps":0}`,
		`{"model":"random-walk","epoch_s":1,"max_speed_mps":10,"pinned":[9]}`,
		`{"model":"group","epoch_s":1,"max_speed_mps":10}`,
	}
	for _, mob := range cases {
		input := `{"nodes":[[0,0],[200,0],[400,0]],"flows":[{"src":0,"dst":2}],"mobility":` + mob + `}`
		if _, err := Load(strings.NewReader(input)); err == nil {
			t.Errorf("accepted bad mobility block %s", mob)
		}
	}
}
