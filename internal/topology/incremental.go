package topology

import (
	"fmt"
	"slices"
	"sort"

	"gmp/internal/geom"
)

// Diff records what one MoveNodes call changed. The mobility layer hands
// it to the subsystems that index state by dense link number (radio
// medium, telemetry recorder) and to the incremental clique updater.
type Diff struct {
	// Moved lists the nodes whose positions changed, ascending.
	Moved []NodeID
	// OldLinks is the dense directed-link slice as it was before the
	// update. Dense per-link state recorded under the old indices must be
	// re-keyed through these Link values into the new index space.
	OldLinks []Link
	// AddedLinks and RemovedLinks are the directed links that appeared
	// and vanished. Both directions of an undirected edge are listed.
	AddedLinks   []Link
	RemovedLinks []Link
	// CSChanged reports whether any carrier-sense adjacency changed.
	// When CSRange equals TxRange it mirrors the link diffs; otherwise
	// CS edges can change while no transmission link does (and vice
	// versa), and contention cliques depend on both.
	CSChanged bool
}

// Changed reports whether the update altered any adjacency at all. When
// false, positions moved but every neighbor list, bitset, link index and
// contention relation is exactly as before.
func (d *Diff) Changed() bool {
	return len(d.AddedLinks) > 0 || len(d.RemovedLinks) > 0 || d.CSChanged
}

// MoveNodes updates the positions of the given nodes in place and
// incrementally repairs every derived structure — Tx/CS neighbor lists,
// bitset adjacency, the dense directed-link index, the spatial grid,
// and the two-hop sets — without the O(N²) scan of a from-scratch
// rebuild. Each mover's neighborhood is recomputed from the grid's
// O(density) candidate cells, so cost is
// O(movers·density + N + L + dirty·deg²) where dirty is the set of
// nodes within two hops of a changed edge (the N + L term is the dense
// link index regeneration, skipped when no edge changed).
//
// newPos[i] is the new position of moved[i]. The moved list must name
// valid nodes with no duplicates. From-scratch construction via New
// remains in-tree as the differential oracle: for any sequence of
// MoveNodes calls the mutated topology is deep-equal to New on the final
// positions (enforced by TestIncrementalMatchesRebuild).
//
// Slices handed out before the call (Neighbors, TwoHopNeighbors, Links)
// are never mutated: every changed list is replaced with a fresh slice,
// so old snapshots — including Diff.OldLinks — stay valid.
func (t *Topology) MoveNodes(moved []NodeID, newPos []geom.Point) (*Diff, error) {
	if len(moved) != len(newPos) {
		return nil, fmt.Errorf("topology: %d moved nodes but %d positions", len(moved), len(newPos))
	}
	n := len(t.pos)
	isMover := make([]bool, n)
	for _, m := range moved {
		if !t.Valid(m) {
			return nil, fmt.Errorf("topology: moved node %d out of range", m)
		}
		if isMover[m] {
			return nil, fmt.Errorf("topology: node %d moved twice in one update", m)
		}
		isMover[m] = true
	}
	diff := &Diff{
		Moved:    append([]NodeID(nil), moved...),
		OldLinks: t.links,
	}
	sort.Slice(diff.Moved, func(i, j int) bool { return diff.Moved[i] < diff.Moved[j] })
	if len(moved) == 0 {
		return diff, nil
	}

	// Snapshot the movers' old adjacency before touching anything: the
	// old two-hop sets seed the dirty region, the old neighbor lists
	// drive the edge diffs.
	sameRange := t.cfg.CSRange == t.cfg.TxRange
	oldTx := make([][]NodeID, len(diff.Moved))
	oldCS := make([][]NodeID, len(diff.Moved))
	oldTwo := make([][]NodeID, len(diff.Moved))
	for i, m := range diff.Moved {
		oldTx[i] = t.neighbors[m]
		oldCS[i] = t.csNeighbors[m]
		oldTwo[i] = t.twoHop[m]
	}
	for i, m := range moved {
		t.pos[m] = newPos[i]
		if t.grid != nil {
			t.grid.Move(int(m), newPos[i])
		}
	}

	// Recompute each mover's neighbor lists. With a grid (every topology
	// built by New) the candidates come from the CSRange-sized cells
	// around the mover's new position — O(density) per mover; all grid
	// buckets were brought current above, so mover–mover edges resolve
	// against new positions on both sides, exactly as the scan does.
	// Grid-less topologies (the brute-force oracle path) fall back to
	// one O(N) scan per mover.
	newTx := make([][]NodeID, len(diff.Moved))
	newCS := make([][]NodeID, len(diff.Moved))
	var buf []int32
	for i, m := range diff.Moved {
		var tx, cs []NodeID
		scan := func(j NodeID) {
			if j == m {
				return
			}
			if geom.WithinRange(t.pos[m], t.pos[j], t.cfg.TxRange) {
				tx = append(tx, j)
			}
			if !sameRange && geom.WithinRange(t.pos[m], t.pos[j], t.cfg.CSRange) {
				cs = append(cs, j)
			}
		}
		if t.grid != nil {
			buf = t.grid.Near(t.pos[m], t.cfg.CSRange, buf[:0])
			for _, jj := range buf {
				scan(NodeID(jj))
			}
			// The grid returns candidates in bucket order; sort the
			// filtered lists into the ascending order the scan yields.
			slices.Sort(tx)
			slices.Sort(cs)
		} else {
			for j := 0; j < n; j++ {
				scan(NodeID(j))
			}
		}
		newTx[i] = tx
		if sameRange {
			newCS[i] = tx
		} else {
			newCS[i] = cs
		}
	}

	// Apply the Tx edge diffs: patch bitsets both directions and splice
	// the non-mover endpoints' sorted lists. Edges between two movers are
	// processed once (from the lower-ID side); both endpoints' lists are
	// replaced wholesale below, so only the bitset and the Diff entry are
	// needed for those.
	for i, m := range diff.Moved {
		added, removed := diffSorted(oldTx[i], newTx[i])
		for _, x := range added {
			if isMover[x] && x < m {
				continue
			}
			t.txAdj.set(int(m), int(x))
			t.txAdj.set(int(x), int(m))
			diff.AddedLinks = append(diff.AddedLinks, Link{m, x}, Link{x, m})
			if !isMover[x] {
				t.neighbors[x] = insertID(t.neighbors[x], m)
			}
		}
		for _, x := range removed {
			if isMover[x] && x < m {
				continue
			}
			t.txAdj.clear(int(m), int(x))
			t.txAdj.clear(int(x), int(m))
			diff.RemovedLinks = append(diff.RemovedLinks, Link{m, x}, Link{x, m})
			if !isMover[x] {
				t.neighbors[x] = removeID(t.neighbors[x], m)
			}
		}
	}
	// Same for the CS structures when they are distinct from the Tx ones;
	// with equal ranges csNeighbors/csAdj alias neighbors/txAdj and are
	// already up to date.
	if sameRange {
		diff.CSChanged = len(diff.AddedLinks) > 0 || len(diff.RemovedLinks) > 0
	} else {
		for i, m := range diff.Moved {
			added, removed := diffSorted(oldCS[i], newCS[i])
			for _, x := range added {
				if isMover[x] && x < m {
					continue
				}
				diff.CSChanged = true
				t.csAdj.set(int(m), int(x))
				t.csAdj.set(int(x), int(m))
				if !isMover[x] {
					t.csNeighbors[x] = insertID(t.csNeighbors[x], m)
				}
			}
			for _, x := range removed {
				if isMover[x] && x < m {
					continue
				}
				diff.CSChanged = true
				t.csAdj.clear(int(m), int(x))
				t.csAdj.clear(int(x), int(m))
				if !isMover[x] {
					t.csNeighbors[x] = removeID(t.csNeighbors[x], m)
				}
			}
		}
	}
	// Install the movers' fresh lists. With equal ranges the outer
	// csNeighbors slice is the same object as neighbors, so the element
	// assignment keeps the alias intact.
	for i, m := range diff.Moved {
		t.neighbors[m] = newTx[i]
		if !sameRange {
			t.csNeighbors[m] = newCS[i]
		}
	}

	if len(diff.AddedLinks) > 0 || len(diff.RemovedLinks) > 0 {
		// Regenerate the dense link index in O(N + L). The old slice is
		// left intact for Diff.OldLinks holders.
		total := 0
		for i := range t.neighbors {
			t.linkBase[i] = total
			total += len(t.neighbors[i])
		}
		t.linkBase[n] = total
		t.links = make([]Link, 0, total)
		for i := range t.neighbors {
			for _, j := range t.neighbors[i] {
				t.links = append(t.links, Link{From: NodeID(i), To: j})
			}
		}

		// Two-hop sets: a node's set can only change if it lies within
		// one hop of a changed edge endpoint, i.e. within the union of
		// every mover's old and new two-hop neighborhoods (plus the
		// movers themselves).
		dirty := make([]bool, n)
		var dirtyList []NodeID
		mark := func(v NodeID) {
			if !dirty[v] {
				dirty[v] = true
				dirtyList = append(dirtyList, v)
			}
		}
		scratch := make([]uint64, (n+63)/64)
		for i, m := range diff.Moved {
			mark(m)
			for _, v := range oldTwo[i] {
				mark(v)
			}
			t.twoHop[m] = t.computeTwoHop(m, scratch)
			for _, v := range t.twoHop[m] {
				mark(v)
			}
		}
		for _, v := range dirtyList {
			if !isMover[v] {
				t.twoHop[v] = t.computeTwoHop(v, scratch)
			}
		}
	}
	return diff, nil
}

// diffSorted returns the elements of b not in a (added) and of a not in b
// (removed). Both inputs are sorted ascending.
func diffSorted(a, b []NodeID) (added, removed []NodeID) {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i] < b[j]:
			removed = append(removed, a[i])
			i++
		default:
			added = append(added, b[j])
			j++
		}
	}
	removed = append(removed, a[i:]...)
	added = append(added, b[j:]...)
	return added, removed
}

// insertID returns a fresh sorted copy of list with id inserted. The
// input slice is not mutated (callers may hold references to it).
func insertID(list []NodeID, id NodeID) []NodeID {
	at := sort.Search(len(list), func(i int) bool { return list[i] >= id })
	out := make([]NodeID, 0, len(list)+1)
	out = append(out, list[:at]...)
	out = append(out, id)
	return append(out, list[at:]...)
}

// removeID returns a fresh copy of list with id removed (no-op copy when
// absent). The input slice is not mutated.
func removeID(list []NodeID, id NodeID) []NodeID {
	at := sort.Search(len(list), func(i int) bool { return list[i] >= id })
	if at == len(list) || list[at] != id {
		return list
	}
	if len(list) == 1 {
		return nil // match New, which leaves empty lists nil
	}
	out := make([]NodeID, 0, len(list)-1)
	out = append(out, list[:at]...)
	return append(out, list[at+1:]...)
}
