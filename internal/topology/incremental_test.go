package topology

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"gmp/internal/geom"
)

// randomPositions scatters n nodes uniformly over a w×h field.
func randomPositions(rng *rand.Rand, n int, w, h float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64() * w, Y: rng.Float64() * h}
	}
	return pts
}

// mutate picks 1..4 distinct movers and their new positions: half small
// jitters, half jumps anywhere in the field.
func mutate(rng *rand.Rand, pos []geom.Point, w, h float64) ([]NodeID, []geom.Point) {
	k := 1 + rng.Intn(4)
	perm := rng.Perm(len(pos))
	moved := make([]NodeID, 0, k)
	np := make([]geom.Point, 0, k)
	for _, idx := range perm[:k] {
		moved = append(moved, NodeID(idx))
		var p geom.Point
		if rng.Intn(2) == 0 {
			p = geom.Point{
				X: clampF(pos[idx].X+(rng.Float64()-0.5)*120, 0, w),
				Y: clampF(pos[idx].Y+(rng.Float64()-0.5)*120, 0, h),
			}
		} else {
			p = geom.Point{X: rng.Float64() * w, Y: rng.Float64() * h}
		}
		np = append(np, p)
		pos[idx] = p
	}
	return moved, np
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// assertEqualTopology deep-compares every derived structure of the
// incrementally maintained topology against a from-scratch rebuild.
func assertEqualTopology(t *testing.T, step int, inc, oracle *Topology) {
	t.Helper()
	if !reflect.DeepEqual(inc.pos, oracle.pos) {
		t.Fatalf("step %d: positions diverged", step)
	}
	if !reflect.DeepEqual(inc.neighbors, oracle.neighbors) {
		t.Fatalf("step %d: neighbor lists diverged\n inc: %v\n want %v", step, inc.neighbors, oracle.neighbors)
	}
	if !reflect.DeepEqual(inc.csNeighbors, oracle.csNeighbors) {
		t.Fatalf("step %d: cs neighbor lists diverged\n inc: %v\n want %v", step, inc.csNeighbors, oracle.csNeighbors)
	}
	if !reflect.DeepEqual(inc.twoHop, oracle.twoHop) {
		t.Fatalf("step %d: two-hop sets diverged\n inc: %v\n want %v", step, inc.twoHop, oracle.twoHop)
	}
	if !reflect.DeepEqual(inc.links, oracle.links) {
		t.Fatalf("step %d: link index diverged\n inc: %v\n want %v", step, inc.links, oracle.links)
	}
	if !reflect.DeepEqual(inc.linkBase, oracle.linkBase) {
		t.Fatalf("step %d: link bases diverged\n inc: %v\n want %v", step, inc.linkBase, oracle.linkBase)
	}
	if !reflect.DeepEqual(inc.txAdj, oracle.txAdj) {
		t.Fatalf("step %d: tx bitset diverged", step)
	}
	if !reflect.DeepEqual(inc.csAdj, oracle.csAdj) {
		t.Fatalf("step %d: cs bitset diverged", step)
	}
	for idx, l := range inc.links {
		if got := inc.LinkIndex(l.From, l.To); got != idx {
			t.Fatalf("step %d: LinkIndex(%v) = %d, want %d", step, l, got, idx)
		}
	}
}

// sortedLinks returns a canonical copy for set comparison.
func sortedLinks(ls []Link) []Link {
	out := append([]Link(nil), ls...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// linkSetDiff returns newLinks − oldLinks and oldLinks − newLinks.
func linkSetDiff(oldLinks, newLinks []Link) (added, removed []Link) {
	old := make(map[Link]bool, len(oldLinks))
	for _, l := range oldLinks {
		old[l] = true
	}
	cur := make(map[Link]bool, len(newLinks))
	for _, l := range newLinks {
		cur[l] = true
		if !old[l] {
			added = append(added, l)
		}
	}
	for _, l := range oldLinks {
		if !cur[l] {
			removed = append(removed, l)
		}
	}
	return sortedLinks(added), sortedLinks(removed)
}

// TestIncrementalMatchesRebuild is the differential oracle for the
// mobility engine: after every randomized motion step, the incrementally
// updated topology must be deep-equal to a from-scratch New on the same
// positions — neighbor lists, bitsets, two-hop sets, link index, and the
// reported link diff all compared.
func TestIncrementalMatchesRebuild(t *testing.T) {
	cases := []struct {
		cfg         Config
		seeds       int64
		steps       int
		minN, spanN int
		w, h        float64
	}{
		// CS structures alias the Tx ones / distinct CS structures.
		{Config{TxRange: 250, CSRange: 250}, 5, 120, 25, 21, 1200, 1200},
		{Config{TxRange: 250, CSRange: 450}, 5, 120, 25, 21, 1200, 1200},
		// Large-N: the grid-backed mover recomputation at a scale where
		// the old O(movers·N) scan would dominate. Fewer steps keep the
		// per-step O(N²-ish) oracle rebuild affordable.
		{Config{TxRange: 250, CSRange: 250}, 1, 20, 700, 1, 9000, 9000},
		{Config{TxRange: 250, CSRange: 400}, 1, 20, 700, 1, 9000, 9000},
	}
	for _, tc := range cases {
		cfg, steps, w, h := tc.cfg, tc.steps, tc.w, tc.h
		for seed := int64(1); seed <= tc.seeds; seed++ {
			rng := rand.New(rand.NewSource(seed))
			n := tc.minN + rng.Intn(tc.spanN)
			pos := randomPositions(rng, n, w, h)
			inc := MustNew(pos, cfg)
			for step := 0; step < steps; step++ {
				moved, np := mutate(rng, pos, w, h)
				diff, err := inc.MoveNodes(moved, np)
				if err != nil {
					t.Fatalf("cfg %+v seed %d step %d: MoveNodes: %v", cfg, seed, step, err)
				}
				oracle := MustNew(pos, cfg)
				assertEqualTopology(t, step, inc, oracle)
				wantAdd, wantDel := linkSetDiff(diff.OldLinks, inc.links)
				if !reflect.DeepEqual(sortedLinks(diff.AddedLinks), wantAdd) {
					t.Fatalf("cfg %+v seed %d step %d: AddedLinks = %v, want %v", cfg, seed, step, diff.AddedLinks, wantAdd)
				}
				if !reflect.DeepEqual(sortedLinks(diff.RemovedLinks), wantDel) {
					t.Fatalf("cfg %+v seed %d step %d: RemovedLinks = %v, want %v", cfg, seed, step, diff.RemovedLinks, wantDel)
				}
				if cfg.CSRange == cfg.TxRange {
					if reflect.ValueOf(inc.neighbors).Pointer() != reflect.ValueOf(inc.csNeighbors).Pointer() {
						t.Fatalf("cfg %+v seed %d step %d: CS alias broken", cfg, seed, step)
					}
					if wantChanged := len(wantAdd)+len(wantDel) > 0; diff.CSChanged != wantChanged {
						t.Fatalf("cfg %+v seed %d step %d: CSChanged = %v, want %v", cfg, seed, step, diff.CSChanged, wantChanged)
					}
				}
			}
		}
	}
}

// TestMoveNodesRejectsBadInput pins the argument validation.
func TestMoveNodesRejectsBadInput(t *testing.T) {
	topo := MustNew([]geom.Point{{X: 0}, {X: 100}, {X: 200}}, DefaultConfig())
	if _, err := topo.MoveNodes([]NodeID{0}, nil); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	if _, err := topo.MoveNodes([]NodeID{3}, []geom.Point{{}}); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	if _, err := topo.MoveNodes([]NodeID{1, 1}, []geom.Point{{}, {}}); err == nil {
		t.Fatal("duplicate mover accepted")
	}
	diff, err := topo.MoveNodes(nil, nil)
	if err != nil || diff.Changed() {
		t.Fatalf("empty move: diff %+v, err %v", diff, err)
	}
}

// benchSide scales the field so node density stays constant as N grows
// (the 3000×3000 field of the original N=200 benchmark).
func benchSide(n int) float64 { return 3000 * math.Sqrt(float64(n)/200) }

// BenchmarkIncrementalUpdate measures MoveNodes with four movers at
// constant density from N=200 (the original ISSUE 6 shape, ≥5x over a
// rebuild) up to city scale, where the grid keeps the per-epoch cost
// flat. The movers oscillate by a fixed offset so every iteration does
// comparable link-churn work.
func BenchmarkIncrementalUpdate(b *testing.B) {
	for _, n := range []int{200, 1000, 5000, 10000} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(7))
			side := benchSide(n)
			pos := randomPositions(rng, n, side, side)
			topo := MustNew(pos, DefaultConfig())
			moved := []NodeID{NodeID(11), NodeID(n / 3), NodeID(2 * n / 3), NodeID(n - 1)}
			dir := 1.0
			np := make([]geom.Point, len(moved))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j, m := range moved {
					p := topo.Position(m)
					np[j] = geom.Point{X: p.X + dir*180, Y: p.Y - dir*120}
				}
				if _, err := topo.MoveNodes(moved, np); err != nil {
					b.Fatal(err)
				}
				dir = -dir
			}
		})
	}
}

// BenchmarkFullRebuild is the from-scratch baseline
// BenchmarkIncrementalUpdate is compared against (grid-backed New; the
// all-pairs scan's own baseline lives in BenchmarkTopologyBuild).
func BenchmarkFullRebuild(b *testing.B) {
	for _, n := range []int{200, 1000, 5000, 10000} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(7))
			side := benchSide(n)
			pos := randomPositions(rng, n, side, side)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := New(pos, DefaultConfig()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
