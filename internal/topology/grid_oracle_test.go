package topology

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"gmp/internal/geom"
)

// assertSameTopology deep-compares every derived structure of the
// grid-built topology against the brute-force oracle. Slices must match
// exactly — including nil vs empty — so the grid path reproduces the
// scan's output byte for byte.
func assertSameTopology(t *testing.T, got, want *Topology) {
	t.Helper()
	if !reflect.DeepEqual(got.pos, want.pos) {
		t.Fatalf("pos mismatch")
	}
	if !reflect.DeepEqual(got.neighbors, want.neighbors) {
		t.Fatalf("neighbors mismatch:\n grid: %v\nbrute: %v", got.neighbors, want.neighbors)
	}
	if !reflect.DeepEqual(got.csNeighbors, want.csNeighbors) {
		t.Fatalf("csNeighbors mismatch:\n grid: %v\nbrute: %v", got.csNeighbors, want.csNeighbors)
	}
	if !reflect.DeepEqual(got.twoHop, want.twoHop) {
		t.Fatalf("twoHop mismatch")
	}
	if !reflect.DeepEqual(got.links, want.links) {
		t.Fatalf("links mismatch:\n grid: %v\nbrute: %v", got.links, want.links)
	}
	if !reflect.DeepEqual(got.linkBase, want.linkBase) {
		t.Fatalf("linkBase mismatch")
	}
	if !reflect.DeepEqual(got.txAdj, want.txAdj) {
		t.Fatalf("txAdj mismatch")
	}
	if !reflect.DeepEqual(got.csAdj, want.csAdj) {
		t.Fatalf("csAdj mismatch")
	}
}

// TestGridMatchesBruteForce is the differential oracle for the spatial
// grid: New (grid-backed) must reproduce newBruteForce (all-pairs scan)
// exactly, across random placements, densities, and range configs —
// including CSRange == TxRange, where the CS structures alias the Tx
// ones.
func TestGridMatchesBruteForce(t *testing.T) {
	cfgs := []Config{
		{TxRange: 250, CSRange: 250}, // aliasing path
		{TxRange: 250, CSRange: 450},
		{TxRange: 100, CSRange: 550},
	}
	for seed := int64(0); seed < 8; seed++ {
		for _, cfg := range cfgs {
			cfg := cfg
			t.Run(fmt.Sprintf("seed%d_tx%v_cs%v", seed, cfg.TxRange, cfg.CSRange), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				n := 20 + rng.Intn(180)
				// Vary the field so densities range from sparse to
				// near-complete graphs.
				w := 200 + rng.Float64()*1800
				h := 200 + rng.Float64()*1800
				pts := make([]geom.Point, n)
				for i := range pts {
					pts[i] = geom.Point{X: rng.Float64() * w, Y: rng.Float64() * h}
				}
				grid, err := New(pts, cfg)
				if err != nil {
					t.Fatal(err)
				}
				brute, err := newBruteForce(pts, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if grid.grid == nil {
					t.Fatal("New did not attach a spatial grid")
				}
				if brute.grid != nil {
					t.Fatal("newBruteForce attached a spatial grid")
				}
				assertSameTopology(t, grid, brute)
				// The CS structures must alias the Tx ones when the
				// ranges coincide, on both paths.
				if cfg.CSRange == cfg.TxRange {
					if reflect.ValueOf(grid.csNeighbors).Pointer() != reflect.ValueOf(grid.neighbors).Pointer() {
						t.Fatal("grid path: csNeighbors does not alias neighbors at equal ranges")
					}
					if &grid.csAdj.words[0] != &grid.txAdj.words[0] {
						t.Fatal("grid path: csAdj does not alias txAdj at equal ranges")
					}
				}
			})
		}
	}
}

// TestGridMoveNodesMatchesBruteMoveNodes drives the same motion
// sequence through a grid topology and a brute-force one: the grid's
// incremental candidate queries must land on identical structures.
func TestGridMoveNodesMatchesBruteMoveNodes(t *testing.T) {
	for _, cfg := range []Config{
		{TxRange: 250, CSRange: 250},
		{TxRange: 250, CSRange: 400},
	} {
		rng := rand.New(rand.NewSource(11))
		n := 60
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Point{X: rng.Float64() * 1200, Y: rng.Float64() * 900}
		}
		grid, err := New(pts, cfg)
		if err != nil {
			t.Fatal(err)
		}
		brute, err := newBruteForce(pts, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 80; step++ {
			k := 1 + rng.Intn(5)
			movers := make([]NodeID, 0, k)
			seen := make(map[NodeID]bool)
			for len(movers) < k {
				m := NodeID(rng.Intn(n))
				if !seen[m] {
					seen[m] = true
					movers = append(movers, m)
				}
			}
			newPos := make([]geom.Point, k)
			for i := range newPos {
				// Occasionally leave the original bounding box: the
				// clamped border cells must stay correct.
				newPos[i] = geom.Point{X: rng.Float64()*1800 - 300, Y: rng.Float64()*1500 - 300}
			}
			if _, err := grid.MoveNodes(movers, newPos); err != nil {
				t.Fatal(err)
			}
			if _, err := brute.MoveNodes(movers, newPos); err != nil {
				t.Fatal(err)
			}
			assertSameTopology(t, grid, brute)
		}
	}
}

// benchPositions lays n nodes out in the city regime the scaling work
// targets (scenario.City): a ~square mesh-ISP grid at 220 m spacing
// with ±10 m placement jitter, so every node links to its 4 cardinal
// neighbors (≤240 m ≤ TxRange) and never diagonally (≥283 m). Degree —
// and with it the grid build's per-node work — stays flat as N grows.
func benchPositions(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	cols := int(math.Ceil(math.Sqrt(float64(n))))
	const spacing = 220.0
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{
			X: float64(i%cols)*spacing + (rng.Float64()-0.5)*20,
			Y: float64(i/cols)*spacing + (rng.Float64()-0.5)*20,
		}
	}
	return pts
}

// BenchmarkTopologyBuild pits the grid construction against the
// brute-force all-pairs scan at city scales. BENCH_pr9.json records the
// asymptotic gap (≥20x at N=5000).
func BenchmarkTopologyBuild(b *testing.B) {
	cfg := DefaultConfig()
	for _, n := range []int{1000, 5000, 10000} {
		pts := benchPositions(n, 7)
		b.Run(fmt.Sprintf("grid/n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := New(pts, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("brute/n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := newBruteForce(pts, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
