// Package topology models the static layout of a multihop wireless
// network: node positions, radio ranges, the resulting neighbor relation,
// two-hop neighborhoods, and the greedy dominating sets that the GMP
// dissemination protocol uses to flood link state two hops out.
package topology

import (
	"errors"
	"fmt"
	"sort"

	"gmp/internal/geom"
)

// NodeID identifies a physical node. IDs are dense, starting at zero.
type NodeID int

// Link is a directed wireless link between two neighboring nodes.
type Link struct {
	From NodeID
	To   NodeID
}

// String renders the link in the paper's "(i,j)" notation.
func (l Link) String() string {
	return fmt.Sprintf("(%d,%d)", l.From, l.To)
}

// Reverse returns the link in the opposite direction.
func (l Link) Reverse() Link {
	return Link{From: l.To, To: l.From}
}

// Undirected returns a canonical ordering of the link's endpoints, used
// when a link should be treated without direction (e.g. contention).
func (l Link) Undirected() Link {
	if l.From > l.To {
		return Link{From: l.To, To: l.From}
	}
	return l
}

// Config carries the radio ranges that define connectivity and contention.
type Config struct {
	// TxRange is the maximum distance in meters at which a frame can be
	// decoded. The paper uses 250 m.
	TxRange float64
	// CSRange is the carrier-sense / interference range in meters. The
	// paper's scenarios behave as if CSRange equals TxRange (hidden
	// terminals exist two hops apart); a larger value may be configured.
	CSRange float64
}

// DefaultConfig mirrors the paper's setup (§7): 250 m transmission range
// with carrier sensing at the same distance.
func DefaultConfig() Config {
	return Config{TxRange: 250, CSRange: 250}
}

// Topology is an immutable placement of nodes plus derived adjacency.
type Topology struct {
	pos       []geom.Point
	cfg       Config
	neighbors [][]NodeID
}

// ErrNoNodes is returned when constructing a topology with no nodes.
var ErrNoNodes = errors.New("topology: no nodes")

// New builds a topology from node positions. Node i is located at
// positions[i]. The position slice is copied.
func New(positions []geom.Point, cfg Config) (*Topology, error) {
	if len(positions) == 0 {
		return nil, ErrNoNodes
	}
	if cfg.TxRange <= 0 {
		return nil, fmt.Errorf("topology: non-positive tx range %v", cfg.TxRange)
	}
	if cfg.CSRange < cfg.TxRange {
		return nil, fmt.Errorf("topology: carrier-sense range %v below tx range %v", cfg.CSRange, cfg.TxRange)
	}
	t := &Topology{
		pos: append([]geom.Point(nil), positions...),
		cfg: cfg,
	}
	t.neighbors = make([][]NodeID, len(positions))
	for i := range positions {
		for j := range positions {
			if i == j {
				continue
			}
			if geom.WithinRange(positions[i], positions[j], cfg.TxRange) {
				t.neighbors[i] = append(t.neighbors[i], NodeID(j))
			}
		}
	}
	return t, nil
}

// MustNew is New for static scenario tables; it panics on error.
func MustNew(positions []geom.Point, cfg Config) *Topology {
	t, err := New(positions, cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// NumNodes returns the node count.
func (t *Topology) NumNodes() int { return len(t.pos) }

// Nodes returns all node IDs in ascending order.
func (t *Topology) Nodes() []NodeID {
	ids := make([]NodeID, len(t.pos))
	for i := range ids {
		ids[i] = NodeID(i)
	}
	return ids
}

// Position returns node n's coordinates.
func (t *Topology) Position(n NodeID) geom.Point { return t.pos[n] }

// Config returns the radio configuration.
func (t *Topology) Config() Config { return t.cfg }

// Valid reports whether n names a node in this topology.
func (t *Topology) Valid(n NodeID) bool {
	return n >= 0 && int(n) < len(t.pos)
}

// InTxRange reports whether a transmission from a can be decoded at b.
func (t *Topology) InTxRange(a, b NodeID) bool {
	if a == b {
		return false
	}
	return geom.WithinRange(t.pos[a], t.pos[b], t.cfg.TxRange)
}

// InCSRange reports whether a transmission from a is sensed (or interferes)
// at b.
func (t *Topology) InCSRange(a, b NodeID) bool {
	if a == b {
		return false
	}
	return geom.WithinRange(t.pos[a], t.pos[b], t.cfg.CSRange)
}

// Neighbors returns the nodes within transmission range of n, ascending.
// The returned slice is shared; callers must not modify it.
func (t *Topology) Neighbors(n NodeID) []NodeID { return t.neighbors[n] }

// AreNeighbors reports whether a and b can exchange frames directly.
func (t *Topology) AreNeighbors(a, b NodeID) bool { return t.InTxRange(a, b) }

// Links returns every directed link in the network.
func (t *Topology) Links() []Link {
	var links []Link
	for i := range t.pos {
		for _, j := range t.neighbors[i] {
			links = append(links, Link{From: NodeID(i), To: j})
		}
	}
	return links
}

// TwoHopNeighbors returns all nodes reachable from n in one or two hops,
// excluding n itself, in ascending order. This is the scope of GMP's link
// state dissemination (§6.2 step 2).
func (t *Topology) TwoHopNeighbors(n NodeID) []NodeID {
	seen := make(map[NodeID]bool)
	for _, m := range t.neighbors[n] {
		seen[m] = true
		for _, k := range t.neighbors[m] {
			if k != n {
				seen[k] = true
			}
		}
	}
	out := make([]NodeID, 0, len(seen))
	for m := range seen {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DominatingSet returns a minimal-ish subset of n's one-hop neighbors whose
// neighborhoods jointly cover every strict two-hop neighbor of n. GMP uses
// this set to rebroadcast link state so it reaches the full two-hop
// neighborhood (§6.2). The greedy set-cover heuristic is used; ties break
// toward smaller node IDs for determinism.
func (t *Topology) DominatingSet(n NodeID) []NodeID {
	oneHop := make(map[NodeID]bool, len(t.neighbors[n]))
	for _, m := range t.neighbors[n] {
		oneHop[m] = true
	}
	// Strict two-hop neighbors: reachable in two hops but not one.
	uncovered := make(map[NodeID]bool)
	for _, m := range t.neighbors[n] {
		for _, k := range t.neighbors[m] {
			if k != n && !oneHop[k] {
				uncovered[k] = true
			}
		}
	}
	var set []NodeID
	for len(uncovered) > 0 {
		best := NodeID(-1)
		bestCover := 0
		for _, m := range t.neighbors[n] {
			cover := 0
			for _, k := range t.neighbors[m] {
				if uncovered[k] {
					cover++
				}
			}
			if cover > bestCover || (cover == bestCover && cover > 0 && (best == -1 || m < best)) {
				best = m
				bestCover = cover
			}
		}
		if best == -1 {
			break // isolated two-hop nodes cannot happen, but stay safe
		}
		set = append(set, best)
		for _, k := range t.neighbors[best] {
			delete(uncovered, k)
		}
	}
	sort.Slice(set, func(i, j int) bool { return set[i] < set[j] })
	return set
}

// Connected reports whether the network graph is connected.
func (t *Topology) Connected() bool {
	if len(t.pos) == 0 {
		return false
	}
	seen := make([]bool, len(t.pos))
	stack := []NodeID{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, m := range t.neighbors[n] {
			if !seen[m] {
				seen[m] = true
				count++
				stack = append(stack, m)
			}
		}
	}
	return count == len(t.pos)
}

// LinksContend reports whether two wireless links contend, i.e. cannot
// carry successful transmissions simultaneously. Two links contend when
// they share a node or when any endpoint of one is within carrier-sense /
// interference range of any endpoint of the other. This is the standard
// "protocol model" contention relation used to build contention cliques.
func (t *Topology) LinksContend(a, b Link) bool {
	if a.From == b.From || a.From == b.To || a.To == b.From || a.To == b.To {
		return true
	}
	ends := [2]NodeID{a.From, a.To}
	others := [2]NodeID{b.From, b.To}
	for _, x := range ends {
		for _, y := range others {
			if t.InCSRange(x, y) {
				return true
			}
		}
	}
	return false
}
