// Package topology models the static layout of a multihop wireless
// network: node positions, radio ranges, the resulting neighbor relation,
// two-hop neighborhoods, and the greedy dominating sets that the GMP
// dissemination protocol uses to flood link state two hops out.
//
// All adjacency is precomputed once at construction time: per-node
// transmission-range and carrier-sense-range neighbor lists, bitset
// adjacency matrices for O(1) InTxRange/InCSRange lookups, and a dense
// integer index over every directed link. The simulator's per-frame hot
// path (internal/radio) iterates neighbor lists and tests bitsets
// instead of scanning all nodes with Euclidean distance recomputation.
package topology

import (
	"errors"
	"fmt"
	"math/bits"
	"slices"
	"sort"

	"gmp/internal/geom"
)

// NodeID identifies a physical node. IDs are dense, starting at zero.
type NodeID int

// Link is a directed wireless link between two neighboring nodes.
type Link struct {
	From NodeID
	To   NodeID
}

// String renders the link in the paper's "(i,j)" notation.
func (l Link) String() string {
	return fmt.Sprintf("(%d,%d)", l.From, l.To)
}

// Reverse returns the link in the opposite direction.
func (l Link) Reverse() Link {
	return Link{From: l.To, To: l.From}
}

// Undirected returns a canonical ordering of the link's endpoints, used
// when a link should be treated without direction (e.g. contention).
func (l Link) Undirected() Link {
	if l.From > l.To {
		return Link{From: l.To, To: l.From}
	}
	return l
}

// Config carries the radio ranges that define connectivity and contention.
type Config struct {
	// TxRange is the maximum distance in meters at which a frame can be
	// decoded. The paper uses 250 m.
	TxRange float64
	// CSRange is the carrier-sense / interference range in meters. The
	// paper's scenarios behave as if CSRange equals TxRange (hidden
	// terminals exist two hops apart); a larger value may be configured.
	CSRange float64
}

// DefaultConfig mirrors the paper's setup (§7): 250 m transmission range
// with carrier sensing at the same distance.
func DefaultConfig() Config {
	return Config{TxRange: 250, CSRange: 250}
}

// bitset is a fixed-size set of node IDs packed into 64-bit words.
type bitset struct {
	words  []uint64
	stride int // words per row
}

func newBitset(rows, cols int) bitset {
	stride := (cols + 63) / 64
	return bitset{words: make([]uint64, rows*stride), stride: stride}
}

func (b bitset) set(row, col int) {
	b.words[row*b.stride+col>>6] |= 1 << (uint(col) & 63)
}

func (b bitset) clear(row, col int) {
	b.words[row*b.stride+col>>6] &^= 1 << (uint(col) & 63)
}

func (b bitset) test(row, col int) bool {
	return b.words[row*b.stride+col>>6]&(1<<(uint(col)&63)) != 0
}

// Topology is an immutable placement of nodes plus derived adjacency.
type Topology struct {
	pos []geom.Point
	cfg Config

	nodes       []NodeID   // all IDs ascending (shared)
	neighbors   [][]NodeID // tx-range neighbors, ascending (shared)
	csNeighbors [][]NodeID // cs-range neighbors, ascending (shared)
	twoHop      [][]NodeID // one- and two-hop neighbors, ascending (shared)

	txAdj bitset // txAdj[a,b] ⇔ InTxRange(a,b)
	csAdj bitset // csAdj[a,b] ⇔ InCSRange(a,b)

	// Dense directed-link indexing: links are numbered in (From,
	// ascending To) order; linkBase[n] is the index of the first link
	// originating at n, so link (n, neighbors[n][k]) has index
	// linkBase[n]+k.
	links    []Link // all directed links in index order (shared)
	linkBase []int

	// grid buckets node positions by CSRange-sized cells so neighbor
	// recomputation inspects O(density) candidates instead of all N
	// nodes. MoveNodes keeps it current. Nil on brute-force-built
	// topologies (the differential oracle path), which fall back to
	// full scans.
	grid *geom.Grid
}

// ErrNoNodes is returned when constructing a topology with no nodes.
var ErrNoNodes = errors.New("topology: no nodes")

// New builds a topology from node positions. Node i is located at
// positions[i]. The position slice is copied.
//
// Adjacency is derived from a spatial grid over the positions (cell
// edge = CSRange), so construction costs O(N·density) rather than the
// all-pairs O(N²). The output is identical to the brute-force scan —
// the same geometric predicate decides membership and per-node lists
// are emitted in ascending ID order — which newBruteForce pins as the
// differential oracle (TestGridMatchesBruteForce).
func New(positions []geom.Point, cfg Config) (*Topology, error) {
	return build(positions, cfg, true)
}

// newBruteForce is New with the original O(N²) all-pairs scan instead
// of the grid. It is retained as the differential oracle for the grid
// path; the resulting topology carries no grid and MoveNodes on it
// falls back to full scans.
func newBruteForce(positions []geom.Point, cfg Config) (*Topology, error) {
	return build(positions, cfg, false)
}

func build(positions []geom.Point, cfg Config, useGrid bool) (*Topology, error) {
	if len(positions) == 0 {
		return nil, ErrNoNodes
	}
	if cfg.TxRange <= 0 {
		return nil, fmt.Errorf("topology: non-positive tx range %v", cfg.TxRange)
	}
	if cfg.CSRange < cfg.TxRange {
		return nil, fmt.Errorf("topology: carrier-sense range %v below tx range %v", cfg.CSRange, cfg.TxRange)
	}
	n := len(positions)
	t := &Topology{
		pos: append([]geom.Point(nil), positions...),
		cfg: cfg,
	}
	t.nodes = make([]NodeID, n)
	for i := range t.nodes {
		t.nodes[i] = NodeID(i)
	}

	// Neighbor lists and bitset adjacency from the geometric predicates.
	// When the ranges coincide the CS structures alias the Tx ones.
	sameRange := cfg.CSRange == cfg.TxRange
	t.neighbors = make([][]NodeID, n)
	t.txAdj = newBitset(n, n)
	if sameRange {
		t.csNeighbors = t.neighbors
		t.csAdj = t.txAdj
	} else {
		t.csNeighbors = make([][]NodeID, n)
		t.csAdj = newBitset(n, n)
	}
	if useGrid {
		// One grid query per node yields the O(density) candidates
		// within CSRange (⊇ TxRange). The filtered lists are sorted
		// afterwards (cheaper than sorting the raw candidates), landing
		// on the same ascending order the all-pairs scan produces.
		t.grid = geom.NewGrid(positions, cfg.CSRange)
		buf := make([]int32, 0, 64)
		var txScratch, csScratch []NodeID
		for i := range positions {
			pi := positions[i]
			buf = t.grid.Near(pi, cfg.CSRange, buf[:0])
			txScratch, csScratch = txScratch[:0], csScratch[:0]
			for _, jj := range buf {
				j := int(jj)
				if j == i {
					continue
				}
				if geom.WithinRange(pi, positions[j], cfg.TxRange) {
					txScratch = append(txScratch, NodeID(j))
				}
				if !sameRange && geom.WithinRange(pi, positions[j], cfg.CSRange) {
					csScratch = append(csScratch, NodeID(j))
				}
			}
			slices.Sort(txScratch)
			t.neighbors[i] = copyIDs(txScratch)
			for _, j := range txScratch {
				t.txAdj.set(i, int(j))
			}
			if !sameRange {
				slices.Sort(csScratch)
				t.csNeighbors[i] = copyIDs(csScratch)
				for _, j := range csScratch {
					t.csAdj.set(i, int(j))
				}
			}
		}
	} else {
		for i := range positions {
			for j := range positions {
				if i == j {
					continue
				}
				if geom.WithinRange(positions[i], positions[j], cfg.TxRange) {
					t.neighbors[i] = append(t.neighbors[i], NodeID(j))
					t.txAdj.set(i, j)
				}
				if !sameRange && geom.WithinRange(positions[i], positions[j], cfg.CSRange) {
					t.csNeighbors[i] = append(t.csNeighbors[i], NodeID(j))
					t.csAdj.set(i, j)
				}
			}
		}
	}

	// Dense link index over the tx adjacency.
	t.linkBase = make([]int, n+1)
	total := 0
	for i := range t.neighbors {
		t.linkBase[i] = total
		total += len(t.neighbors[i])
	}
	t.linkBase[n] = total
	t.links = make([]Link, 0, total)
	for i := range t.neighbors {
		for _, j := range t.neighbors[i] {
			t.links = append(t.links, Link{From: NodeID(i), To: j})
		}
	}

	// Two-hop neighborhoods (the dissemination scope, §6.2 step 2).
	t.twoHop = make([][]NodeID, n)
	scratch := make([]uint64, (n+63)/64)
	for v := range t.twoHop {
		t.twoHop[v] = t.computeTwoHop(NodeID(v), scratch)
	}
	return t, nil
}

// computeTwoHop builds node v's one-and-two-hop neighborhood as the
// union of the tx-bitset rows of v and v's neighbors (a neighbor's row
// is exactly its one-hop set), so it must run after the adjacency is
// fully built. scratch is an all-zero bitmap of at least
// ceil(NumNodes/64) words; it is restored to all-zero before returning.
// Work is confined to the word window spanned by the participating
// neighbor lists — when node IDs correlate with position (gridded city
// meshes) that window is a handful of words regardless of N — and
// emitting from the bitmap in word order yields the ascending output
// the rest of the package relies on, with no sort.
func (t *Topology) computeTwoHop(v NodeID, scratch []uint64) []NodeID {
	nv := t.neighbors[v]
	if len(nv) == 0 {
		return nil
	}
	// The union's support is bounded by the extrema of the sorted
	// neighbor lists being OR'd in.
	lo, hi := int(nv[0]), int(nv[len(nv)-1])
	for _, m := range nv {
		if nm := t.neighbors[m]; len(nm) > 0 {
			if int(nm[0]) < lo {
				lo = int(nm[0])
			}
			if int(nm[len(nm)-1]) > hi {
				hi = int(nm[len(nm)-1])
			}
		}
	}
	w0, w1 := lo>>6, hi>>6
	stride := t.txAdj.stride
	window := scratch[w0 : w1+1]
	copy(window, t.txAdj.words[int(v)*stride+w0:int(v)*stride+w1+1])
	for _, m := range nv {
		row := t.txAdj.words[int(m)*stride+w0 : int(m)*stride+w1+1]
		for wi, w := range row {
			window[wi] |= w
		}
	}
	// v itself is a neighbor of each of its neighbors: drop it.
	scratch[int(v)>>6] &^= 1 << (uint(v) & 63)
	count := 0
	for _, w := range window {
		count += bits.OnesCount64(w)
	}
	if count == 0 {
		return nil
	}
	out := make([]NodeID, 0, count)
	for wi := w0; wi <= w1; wi++ {
		word := scratch[wi]
		for word != 0 {
			out = append(out, NodeID(wi<<6+bits.TrailingZeros64(word)))
			word &= word - 1
		}
		scratch[wi] = 0
	}
	return out
}

// copyIDs returns an exact-size copy of ids, nil when empty (neighbor
// lists leave empty entries nil throughout the package).
func copyIDs(ids []NodeID) []NodeID {
	if len(ids) == 0 {
		return nil
	}
	out := make([]NodeID, len(ids))
	copy(out, ids)
	return out
}

// MustNew is New for static scenario tables; it panics on error.
func MustNew(positions []geom.Point, cfg Config) *Topology {
	t, err := New(positions, cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// NumNodes returns the node count.
func (t *Topology) NumNodes() int { return len(t.pos) }

// Nodes returns all node IDs in ascending order. The returned slice is
// shared; callers must not modify it.
func (t *Topology) Nodes() []NodeID { return t.nodes }

// Position returns node n's coordinates.
func (t *Topology) Position(n NodeID) geom.Point { return t.pos[n] }

// Config returns the radio configuration.
func (t *Topology) Config() Config { return t.cfg }

// Valid reports whether n names a node in this topology.
func (t *Topology) Valid(n NodeID) bool {
	return n >= 0 && int(n) < len(t.pos)
}

// InTxRange reports whether a transmission from a can be decoded at b.
// O(1): a precomputed bitset lookup, no distance computation.
func (t *Topology) InTxRange(a, b NodeID) bool {
	return t.txAdj.test(int(a), int(b))
}

// InCSRange reports whether a transmission from a is sensed (or interferes)
// at b. O(1), like InTxRange.
func (t *Topology) InCSRange(a, b NodeID) bool {
	return t.csAdj.test(int(a), int(b))
}

// Neighbors returns the nodes within transmission range of n, ascending.
// The returned slice is shared; callers must not modify it.
func (t *Topology) Neighbors(n NodeID) []NodeID { return t.neighbors[n] }

// CSNeighbors returns the nodes within carrier-sense range of n,
// ascending. When CSRange equals TxRange this is exactly Neighbors(n).
// The returned slice is shared; callers must not modify it.
func (t *Topology) CSNeighbors(n NodeID) []NodeID { return t.csNeighbors[n] }

// AreNeighbors reports whether a and b can exchange frames directly.
func (t *Topology) AreNeighbors(a, b NodeID) bool { return t.txAdj.test(int(a), int(b)) }

// NumLinks returns the number of directed links.
func (t *Topology) NumLinks() int { return len(t.links) }

// Links returns every directed link in the network, in dense-index
// order: ascending From, then ascending To. The returned slice is
// shared; callers must not modify it.
func (t *Topology) Links() []Link { return t.links }

// LinkAt returns the directed link with dense index idx.
func (t *Topology) LinkAt(idx int) Link { return t.links[idx] }

// LinkIndex returns the dense index of the directed link from→to, or -1
// when the nodes are not within transmission range. O(log degree).
func (t *Topology) LinkIndex(from, to NodeID) int {
	nbrs := t.neighbors[from]
	lo, hi := 0, len(nbrs)
	for lo < hi {
		mid := (lo + hi) / 2
		if nbrs[mid] < to {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(nbrs) && nbrs[lo] == to {
		return t.linkBase[from] + lo
	}
	return -1
}

// NodeLinkBase returns the dense index of the first directed link
// originating at n: link (n, Neighbors(n)[k]) has index NodeLinkBase(n)+k.
func (t *Topology) NodeLinkBase(n NodeID) int { return t.linkBase[n] }

// TwoHopNeighbors returns all nodes reachable from n in one or two hops,
// excluding n itself, in ascending order. This is the scope of GMP's link
// state dissemination (§6.2 step 2). The returned slice is shared;
// callers must not modify it.
func (t *Topology) TwoHopNeighbors(n NodeID) []NodeID { return t.twoHop[n] }

// DominatingSet returns a minimal-ish subset of n's one-hop neighbors whose
// neighborhoods jointly cover every strict two-hop neighbor of n. GMP uses
// this set to rebroadcast link state so it reaches the full two-hop
// neighborhood (§6.2). The greedy set-cover heuristic is used; ties break
// toward smaller node IDs for determinism.
func (t *Topology) DominatingSet(n NodeID) []NodeID {
	oneHop := make(map[NodeID]bool, len(t.neighbors[n]))
	for _, m := range t.neighbors[n] {
		oneHop[m] = true
	}
	// Strict two-hop neighbors: reachable in two hops but not one.
	uncovered := make(map[NodeID]bool)
	for _, m := range t.neighbors[n] {
		for _, k := range t.neighbors[m] {
			if k != n && !oneHop[k] {
				uncovered[k] = true
			}
		}
	}
	var set []NodeID
	for len(uncovered) > 0 {
		best := NodeID(-1)
		bestCover := 0
		for _, m := range t.neighbors[n] {
			cover := 0
			for _, k := range t.neighbors[m] {
				if uncovered[k] {
					cover++
				}
			}
			if cover > bestCover || (cover == bestCover && cover > 0 && (best == -1 || m < best)) {
				best = m
				bestCover = cover
			}
		}
		if best == -1 {
			break // isolated two-hop nodes cannot happen, but stay safe
		}
		set = append(set, best)
		for _, k := range t.neighbors[best] {
			delete(uncovered, k)
		}
	}
	sort.Slice(set, func(i, j int) bool { return set[i] < set[j] })
	return set
}

// Connected reports whether the network graph is connected.
func (t *Topology) Connected() bool {
	if len(t.pos) == 0 {
		return false
	}
	seen := make([]bool, len(t.pos))
	stack := []NodeID{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, m := range t.neighbors[n] {
			if !seen[m] {
				seen[m] = true
				count++
				stack = append(stack, m)
			}
		}
	}
	return count == len(t.pos)
}

// LinksContend reports whether two wireless links contend, i.e. cannot
// carry successful transmissions simultaneously. Two links contend when
// they share a node or when any endpoint of one is within carrier-sense /
// interference range of any endpoint of the other. This is the standard
// "protocol model" contention relation used to build contention cliques.
func (t *Topology) LinksContend(a, b Link) bool {
	if a.From == b.From || a.From == b.To || a.To == b.From || a.To == b.To {
		return true
	}
	ends := [2]NodeID{a.From, a.To}
	others := [2]NodeID{b.From, b.To}
	for _, x := range ends {
		for _, y := range others {
			if t.InCSRange(x, y) {
				return true
			}
		}
	}
	return false
}
