// Package topology models the static layout of a multihop wireless
// network: node positions, radio ranges, the resulting neighbor relation,
// two-hop neighborhoods, and the greedy dominating sets that the GMP
// dissemination protocol uses to flood link state two hops out.
//
// All adjacency is precomputed once at construction time: per-node
// transmission-range and carrier-sense-range neighbor lists, bitset
// adjacency matrices for O(1) InTxRange/InCSRange lookups, and a dense
// integer index over every directed link. The simulator's per-frame hot
// path (internal/radio) iterates neighbor lists and tests bitsets
// instead of scanning all nodes with Euclidean distance recomputation.
package topology

import (
	"errors"
	"fmt"
	"sort"

	"gmp/internal/geom"
)

// NodeID identifies a physical node. IDs are dense, starting at zero.
type NodeID int

// Link is a directed wireless link between two neighboring nodes.
type Link struct {
	From NodeID
	To   NodeID
}

// String renders the link in the paper's "(i,j)" notation.
func (l Link) String() string {
	return fmt.Sprintf("(%d,%d)", l.From, l.To)
}

// Reverse returns the link in the opposite direction.
func (l Link) Reverse() Link {
	return Link{From: l.To, To: l.From}
}

// Undirected returns a canonical ordering of the link's endpoints, used
// when a link should be treated without direction (e.g. contention).
func (l Link) Undirected() Link {
	if l.From > l.To {
		return Link{From: l.To, To: l.From}
	}
	return l
}

// Config carries the radio ranges that define connectivity and contention.
type Config struct {
	// TxRange is the maximum distance in meters at which a frame can be
	// decoded. The paper uses 250 m.
	TxRange float64
	// CSRange is the carrier-sense / interference range in meters. The
	// paper's scenarios behave as if CSRange equals TxRange (hidden
	// terminals exist two hops apart); a larger value may be configured.
	CSRange float64
}

// DefaultConfig mirrors the paper's setup (§7): 250 m transmission range
// with carrier sensing at the same distance.
func DefaultConfig() Config {
	return Config{TxRange: 250, CSRange: 250}
}

// bitset is a fixed-size set of node IDs packed into 64-bit words.
type bitset struct {
	words  []uint64
	stride int // words per row
}

func newBitset(rows, cols int) bitset {
	stride := (cols + 63) / 64
	return bitset{words: make([]uint64, rows*stride), stride: stride}
}

func (b bitset) set(row, col int) {
	b.words[row*b.stride+col>>6] |= 1 << (uint(col) & 63)
}

func (b bitset) clear(row, col int) {
	b.words[row*b.stride+col>>6] &^= 1 << (uint(col) & 63)
}

func (b bitset) test(row, col int) bool {
	return b.words[row*b.stride+col>>6]&(1<<(uint(col)&63)) != 0
}

// Topology is an immutable placement of nodes plus derived adjacency.
type Topology struct {
	pos []geom.Point
	cfg Config

	nodes       []NodeID   // all IDs ascending (shared)
	neighbors   [][]NodeID // tx-range neighbors, ascending (shared)
	csNeighbors [][]NodeID // cs-range neighbors, ascending (shared)
	twoHop      [][]NodeID // one- and two-hop neighbors, ascending (shared)

	txAdj bitset // txAdj[a,b] ⇔ InTxRange(a,b)
	csAdj bitset // csAdj[a,b] ⇔ InCSRange(a,b)

	// Dense directed-link indexing: links are numbered in (From,
	// ascending To) order; linkBase[n] is the index of the first link
	// originating at n, so link (n, neighbors[n][k]) has index
	// linkBase[n]+k.
	links    []Link // all directed links in index order (shared)
	linkBase []int
}

// ErrNoNodes is returned when constructing a topology with no nodes.
var ErrNoNodes = errors.New("topology: no nodes")

// New builds a topology from node positions. Node i is located at
// positions[i]. The position slice is copied.
func New(positions []geom.Point, cfg Config) (*Topology, error) {
	if len(positions) == 0 {
		return nil, ErrNoNodes
	}
	if cfg.TxRange <= 0 {
		return nil, fmt.Errorf("topology: non-positive tx range %v", cfg.TxRange)
	}
	if cfg.CSRange < cfg.TxRange {
		return nil, fmt.Errorf("topology: carrier-sense range %v below tx range %v", cfg.CSRange, cfg.TxRange)
	}
	n := len(positions)
	t := &Topology{
		pos: append([]geom.Point(nil), positions...),
		cfg: cfg,
	}
	t.nodes = make([]NodeID, n)
	for i := range t.nodes {
		t.nodes[i] = NodeID(i)
	}

	// Neighbor lists and bitset adjacency from the geometric predicates.
	// When the ranges coincide the CS structures alias the Tx ones.
	sameRange := cfg.CSRange == cfg.TxRange
	t.neighbors = make([][]NodeID, n)
	t.txAdj = newBitset(n, n)
	if sameRange {
		t.csNeighbors = t.neighbors
		t.csAdj = t.txAdj
	} else {
		t.csNeighbors = make([][]NodeID, n)
		t.csAdj = newBitset(n, n)
	}
	for i := range positions {
		for j := range positions {
			if i == j {
				continue
			}
			if geom.WithinRange(positions[i], positions[j], cfg.TxRange) {
				t.neighbors[i] = append(t.neighbors[i], NodeID(j))
				t.txAdj.set(i, j)
			}
			if !sameRange && geom.WithinRange(positions[i], positions[j], cfg.CSRange) {
				t.csNeighbors[i] = append(t.csNeighbors[i], NodeID(j))
				t.csAdj.set(i, j)
			}
		}
	}

	// Dense link index over the tx adjacency.
	t.linkBase = make([]int, n+1)
	total := 0
	for i := range t.neighbors {
		t.linkBase[i] = total
		total += len(t.neighbors[i])
	}
	t.linkBase[n] = total
	t.links = make([]Link, 0, total)
	for i := range t.neighbors {
		for _, j := range t.neighbors[i] {
			t.links = append(t.links, Link{From: NodeID(i), To: j})
		}
	}

	// Two-hop neighborhoods (the dissemination scope, §6.2 step 2).
	t.twoHop = make([][]NodeID, n)
	seen := make([]bool, n)
	for v := range t.twoHop {
		t.twoHop[v] = t.computeTwoHop(NodeID(v), seen)
	}
	return t, nil
}

// computeTwoHop builds node v's one-and-two-hop neighborhood from the
// current neighbor lists. seen is an all-false scratch slice of length
// NumNodes; it is restored to all-false before returning.
func (t *Topology) computeTwoHop(v NodeID, seen []bool) []NodeID {
	var touched []NodeID
	for _, m := range t.neighbors[v] {
		if !seen[m] {
			seen[m] = true
			touched = append(touched, m)
		}
		for _, k := range t.neighbors[m] {
			if k != v && !seen[k] {
				seen[k] = true
				touched = append(touched, k)
			}
		}
	}
	sort.Slice(touched, func(i, j int) bool { return touched[i] < touched[j] })
	for _, m := range touched {
		seen[m] = false
	}
	return touched
}

// MustNew is New for static scenario tables; it panics on error.
func MustNew(positions []geom.Point, cfg Config) *Topology {
	t, err := New(positions, cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// NumNodes returns the node count.
func (t *Topology) NumNodes() int { return len(t.pos) }

// Nodes returns all node IDs in ascending order. The returned slice is
// shared; callers must not modify it.
func (t *Topology) Nodes() []NodeID { return t.nodes }

// Position returns node n's coordinates.
func (t *Topology) Position(n NodeID) geom.Point { return t.pos[n] }

// Config returns the radio configuration.
func (t *Topology) Config() Config { return t.cfg }

// Valid reports whether n names a node in this topology.
func (t *Topology) Valid(n NodeID) bool {
	return n >= 0 && int(n) < len(t.pos)
}

// InTxRange reports whether a transmission from a can be decoded at b.
// O(1): a precomputed bitset lookup, no distance computation.
func (t *Topology) InTxRange(a, b NodeID) bool {
	return t.txAdj.test(int(a), int(b))
}

// InCSRange reports whether a transmission from a is sensed (or interferes)
// at b. O(1), like InTxRange.
func (t *Topology) InCSRange(a, b NodeID) bool {
	return t.csAdj.test(int(a), int(b))
}

// Neighbors returns the nodes within transmission range of n, ascending.
// The returned slice is shared; callers must not modify it.
func (t *Topology) Neighbors(n NodeID) []NodeID { return t.neighbors[n] }

// CSNeighbors returns the nodes within carrier-sense range of n,
// ascending. When CSRange equals TxRange this is exactly Neighbors(n).
// The returned slice is shared; callers must not modify it.
func (t *Topology) CSNeighbors(n NodeID) []NodeID { return t.csNeighbors[n] }

// AreNeighbors reports whether a and b can exchange frames directly.
func (t *Topology) AreNeighbors(a, b NodeID) bool { return t.txAdj.test(int(a), int(b)) }

// NumLinks returns the number of directed links.
func (t *Topology) NumLinks() int { return len(t.links) }

// Links returns every directed link in the network, in dense-index
// order: ascending From, then ascending To. The returned slice is
// shared; callers must not modify it.
func (t *Topology) Links() []Link { return t.links }

// LinkAt returns the directed link with dense index idx.
func (t *Topology) LinkAt(idx int) Link { return t.links[idx] }

// LinkIndex returns the dense index of the directed link from→to, or -1
// when the nodes are not within transmission range. O(log degree).
func (t *Topology) LinkIndex(from, to NodeID) int {
	nbrs := t.neighbors[from]
	lo, hi := 0, len(nbrs)
	for lo < hi {
		mid := (lo + hi) / 2
		if nbrs[mid] < to {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(nbrs) && nbrs[lo] == to {
		return t.linkBase[from] + lo
	}
	return -1
}

// NodeLinkBase returns the dense index of the first directed link
// originating at n: link (n, Neighbors(n)[k]) has index NodeLinkBase(n)+k.
func (t *Topology) NodeLinkBase(n NodeID) int { return t.linkBase[n] }

// TwoHopNeighbors returns all nodes reachable from n in one or two hops,
// excluding n itself, in ascending order. This is the scope of GMP's link
// state dissemination (§6.2 step 2). The returned slice is shared;
// callers must not modify it.
func (t *Topology) TwoHopNeighbors(n NodeID) []NodeID { return t.twoHop[n] }

// DominatingSet returns a minimal-ish subset of n's one-hop neighbors whose
// neighborhoods jointly cover every strict two-hop neighbor of n. GMP uses
// this set to rebroadcast link state so it reaches the full two-hop
// neighborhood (§6.2). The greedy set-cover heuristic is used; ties break
// toward smaller node IDs for determinism.
func (t *Topology) DominatingSet(n NodeID) []NodeID {
	oneHop := make(map[NodeID]bool, len(t.neighbors[n]))
	for _, m := range t.neighbors[n] {
		oneHop[m] = true
	}
	// Strict two-hop neighbors: reachable in two hops but not one.
	uncovered := make(map[NodeID]bool)
	for _, m := range t.neighbors[n] {
		for _, k := range t.neighbors[m] {
			if k != n && !oneHop[k] {
				uncovered[k] = true
			}
		}
	}
	var set []NodeID
	for len(uncovered) > 0 {
		best := NodeID(-1)
		bestCover := 0
		for _, m := range t.neighbors[n] {
			cover := 0
			for _, k := range t.neighbors[m] {
				if uncovered[k] {
					cover++
				}
			}
			if cover > bestCover || (cover == bestCover && cover > 0 && (best == -1 || m < best)) {
				best = m
				bestCover = cover
			}
		}
		if best == -1 {
			break // isolated two-hop nodes cannot happen, but stay safe
		}
		set = append(set, best)
		for _, k := range t.neighbors[best] {
			delete(uncovered, k)
		}
	}
	sort.Slice(set, func(i, j int) bool { return set[i] < set[j] })
	return set
}

// Connected reports whether the network graph is connected.
func (t *Topology) Connected() bool {
	if len(t.pos) == 0 {
		return false
	}
	seen := make([]bool, len(t.pos))
	stack := []NodeID{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, m := range t.neighbors[n] {
			if !seen[m] {
				seen[m] = true
				count++
				stack = append(stack, m)
			}
		}
	}
	return count == len(t.pos)
}

// LinksContend reports whether two wireless links contend, i.e. cannot
// carry successful transmissions simultaneously. Two links contend when
// they share a node or when any endpoint of one is within carrier-sense /
// interference range of any endpoint of the other. This is the standard
// "protocol model" contention relation used to build contention cliques.
func (t *Topology) LinksContend(a, b Link) bool {
	if a.From == b.From || a.From == b.To || a.To == b.From || a.To == b.To {
		return true
	}
	ends := [2]NodeID{a.From, a.To}
	others := [2]NodeID{b.From, b.To}
	for _, x := range ends {
		for _, y := range others {
			if t.InCSRange(x, y) {
				return true
			}
		}
	}
	return false
}
