package topology

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gmp/internal/geom"
)

// chain returns an n-node chain with the given spacing.
func chain(t *testing.T, n int, spacing float64) *Topology {
	t.Helper()
	pos := make([]geom.Point, n)
	for i := range pos {
		pos[i] = geom.Point{X: float64(i) * spacing}
	}
	topo, err := New(pos, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, DefaultConfig()); err == nil {
		t.Error("no nodes accepted")
	}
	if _, err := New([]geom.Point{{}}, Config{TxRange: 0, CSRange: 0}); err == nil {
		t.Error("zero tx range accepted")
	}
	if _, err := New([]geom.Point{{}}, Config{TxRange: 250, CSRange: 100}); err == nil {
		t.Error("cs range below tx range accepted")
	}
}

func TestNeighborsOnChain(t *testing.T) {
	topo := chain(t, 4, 200)
	tests := []struct {
		node NodeID
		want []NodeID
	}{
		{0, []NodeID{1}},
		{1, []NodeID{0, 2}},
		{2, []NodeID{1, 3}},
		{3, []NodeID{2}},
	}
	for _, tt := range tests {
		got := topo.Neighbors(tt.node)
		if len(got) != len(tt.want) {
			t.Fatalf("Neighbors(%d) = %v, want %v", tt.node, got, tt.want)
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Fatalf("Neighbors(%d) = %v, want %v", tt.node, got, tt.want)
			}
		}
	}
}

func TestInTxRangeBoundaryInclusive(t *testing.T) {
	topo, err := New([]geom.Point{{X: 0}, {X: 250}}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !topo.InTxRange(0, 1) {
		t.Error("exactly-at-range nodes should be neighbors")
	}
	if topo.InTxRange(0, 0) {
		t.Error("node in range of itself")
	}
}

func TestTwoHopNeighbors(t *testing.T) {
	topo := chain(t, 5, 200)
	got := topo.TwoHopNeighbors(0)
	want := []NodeID{1, 2}
	if len(got) != len(want) {
		t.Fatalf("TwoHopNeighbors(0) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TwoHopNeighbors(0) = %v, want %v", got, want)
		}
	}
	mid := topo.TwoHopNeighbors(2)
	if len(mid) != 4 {
		t.Fatalf("TwoHopNeighbors(2) = %v, want 4 nodes", mid)
	}
}

func TestDominatingSetCoversTwoHop(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(15)
		pos := make([]geom.Point, n)
		for i := range pos {
			pos[i] = geom.Point{X: rng.Float64() * 800, Y: rng.Float64() * 800}
		}
		topo, err := New(pos, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range topo.Nodes() {
			ds := topo.DominatingSet(v)
			// Every dominating-set member must be a one-hop neighbor.
			oneHop := make(map[NodeID]bool)
			for _, m := range topo.Neighbors(v) {
				oneHop[m] = true
			}
			covered := make(map[NodeID]bool)
			for _, d := range ds {
				if !oneHop[d] {
					t.Fatalf("dominating set of %d contains non-neighbor %d", v, d)
				}
				for _, m := range topo.Neighbors(d) {
					covered[m] = true
				}
			}
			// Every strict two-hop neighbor must be covered.
			for _, u := range topo.TwoHopNeighbors(v) {
				if oneHop[u] || u == v {
					continue
				}
				if !covered[u] {
					t.Fatalf("node %d: two-hop neighbor %d not covered by dominating set %v", v, u, ds)
				}
			}
		}
	}
}

func TestConnected(t *testing.T) {
	if !chain(t, 5, 200).Connected() {
		t.Error("chain should be connected")
	}
	topo, err := New([]geom.Point{{X: 0}, {X: 1000}}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if topo.Connected() {
		t.Error("disconnected pair reported connected")
	}
}

func TestLinksContendSharedNode(t *testing.T) {
	topo := chain(t, 4, 200)
	if !topo.LinksContend(Link{0, 1}, Link{1, 2}) {
		t.Error("links sharing a node must contend")
	}
}

func TestLinksContendByProximity(t *testing.T) {
	// Chain 0-1-2-3 with 200 m spacing: links (0,1) and (2,3) share no
	// node but nodes 1 and 2 are 200 m apart, inside carrier sense.
	topo := chain(t, 4, 200)
	if !topo.LinksContend(Link{0, 1}, Link{2, 3}) {
		t.Error("(0,1) and (2,3) should contend via nodes 1-2 proximity")
	}
}

func TestLinksDoNotContendWhenFar(t *testing.T) {
	topo := chain(t, 6, 200)
	if topo.LinksContend(Link{0, 1}, Link{4, 5}) {
		t.Error("far-apart links should not contend")
	}
}

func TestLinksContendSymmetry(t *testing.T) {
	topo := chain(t, 6, 200)
	links := topo.Links()
	for _, a := range links {
		for _, b := range links {
			if topo.LinksContend(a, b) != topo.LinksContend(b, a) {
				t.Fatalf("contention not symmetric for %v, %v", a, b)
			}
		}
	}
}

func TestLinkHelpers(t *testing.T) {
	l := Link{From: 3, To: 1}
	if l.Undirected() != (Link{From: 1, To: 3}) {
		t.Errorf("Undirected() = %v", l.Undirected())
	}
	if l.Reverse() != (Link{From: 1, To: 3}) {
		t.Errorf("Reverse() = %v", l.Reverse())
	}
	if l.String() != "(3,1)" {
		t.Errorf("String() = %q", l.String())
	}
}

func TestLinksAreSymmetricPairs(t *testing.T) {
	topo := chain(t, 5, 200)
	links := topo.Links()
	set := make(map[Link]bool, len(links))
	for _, l := range links {
		set[l] = true
	}
	for _, l := range links {
		if !set[l.Reverse()] {
			t.Fatalf("link %v present without its reverse", l)
		}
	}
}

// Property: neighbor relation is symmetric for random placements.
func TestNeighborSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		pos := make([]geom.Point, n)
		for i := range pos {
			pos[i] = geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		}
		topo, err := New(pos, DefaultConfig())
		if err != nil {
			return false
		}
		for _, a := range topo.Nodes() {
			for _, b := range topo.Nodes() {
				if topo.InTxRange(a, b) != topo.InTxRange(b, a) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestValid(t *testing.T) {
	topo := chain(t, 3, 200)
	if !topo.Valid(0) || !topo.Valid(2) {
		t.Error("valid IDs rejected")
	}
	if topo.Valid(-1) || topo.Valid(3) {
		t.Error("invalid IDs accepted")
	}
}

func TestPositionsAreCopied(t *testing.T) {
	pos := []geom.Point{{X: 0}, {X: 100}}
	topo, err := New(pos, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pos[0].X = 999
	if topo.Position(0).X != 0 {
		t.Error("topology aliases caller's position slice")
	}
}

func TestMustNewPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew with no nodes did not panic")
		}
	}()
	MustNew(nil, DefaultConfig())
}

func TestConfigAccessor(t *testing.T) {
	cfg := Config{TxRange: 100, CSRange: 220}
	topo, err := New([]geom.Point{{X: 0}, {X: 90}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Config() != cfg {
		t.Errorf("Config() = %+v", topo.Config())
	}
	// CS range beyond tx range: nodes 0,1 are neighbors; a node at 200
	// is sensed but not linked.
	topo2, err := New([]geom.Point{{X: 0}, {X: 90}, {X: 200}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if topo2.InTxRange(0, 2) {
		t.Error("200m apart linked at 100m tx range")
	}
	if !topo2.InCSRange(0, 2) {
		t.Error("200m apart not sensed at 220m cs range")
	}
}
