package topology

import (
	"math/rand"
	"sort"
	"testing"

	"gmp/internal/geom"
)

// randomTopo places n nodes uniformly in a w×w field. With csFactor > 1
// the carrier-sense range exceeds the transmission range, exercising the
// separate csAdj matrix and csNeighbors lists.
func randomTopo(rng *rand.Rand, n int, w, txRange, csFactor float64) (*Topology, []geom.Point) {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64() * w, Y: rng.Float64() * w}
	}
	cfg := Config{TxRange: txRange, CSRange: txRange * csFactor}
	return MustNew(pts, cfg), pts
}

// TestAdjacencyMatchesGeometry checks every precomputed structure — the
// tx/cs bitsets, the sorted neighbor lists, two-hop sets, and the dense
// link index — against the geometric predicates they cache, on random
// topologies with both equal and widened carrier-sense ranges.
func TestAdjacencyMatchesGeometry(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(40)
		csFactor := 1.0
		if trial%2 == 1 {
			csFactor = 1 + rng.Float64() // CSRange in (TxRange, 2·TxRange)
		}
		topo, pts := randomTopo(rng, n, 1000, 250, csFactor)
		cfg := topo.Config()

		wantLinks := 0
		for a := 0; a < n; a++ {
			var wantTx, wantCS []NodeID
			for b := 0; b < n; b++ {
				if a == b {
					continue
				}
				inTx := geom.WithinRange(pts[a], pts[b], cfg.TxRange)
				inCS := geom.WithinRange(pts[a], pts[b], cfg.CSRange)
				if got := topo.InTxRange(NodeID(a), NodeID(b)); got != inTx {
					t.Fatalf("trial %d: InTxRange(%d,%d) = %v, geometry says %v", trial, a, b, got, inTx)
				}
				if got := topo.InCSRange(NodeID(a), NodeID(b)); got != inCS {
					t.Fatalf("trial %d: InCSRange(%d,%d) = %v, geometry says %v", trial, a, b, got, inCS)
				}
				if got := topo.AreNeighbors(NodeID(a), NodeID(b)); got != inTx {
					t.Fatalf("trial %d: AreNeighbors(%d,%d) = %v, geometry says %v", trial, a, b, got, inTx)
				}
				if inTx {
					wantTx = append(wantTx, NodeID(b))
					wantLinks++
				}
				if inCS {
					wantCS = append(wantCS, NodeID(b))
				}
			}
			if got := topo.Neighbors(NodeID(a)); !equalIDs(got, wantTx) {
				t.Fatalf("trial %d: Neighbors(%d) = %v, want %v", trial, a, got, wantTx)
			}
			if got := topo.CSNeighbors(NodeID(a)); !equalIDs(got, wantCS) {
				t.Fatalf("trial %d: CSNeighbors(%d) = %v, want %v", trial, a, got, wantCS)
			}

			// Two-hop scope: everything reachable in one or two hops,
			// excluding the node itself.
			seen := map[NodeID]bool{}
			for _, m := range wantTx {
				seen[m] = true
				for _, k := range topo.Neighbors(m) {
					seen[k] = true
				}
			}
			var wantTwo []NodeID
			for k := range seen {
				if k != NodeID(a) {
					wantTwo = append(wantTwo, k)
				}
			}
			sort.Slice(wantTwo, func(i, j int) bool { return wantTwo[i] < wantTwo[j] })
			if got := topo.TwoHopNeighbors(NodeID(a)); !equalIDs(got, wantTwo) {
				t.Fatalf("trial %d: TwoHopNeighbors(%d) = %v, want %v", trial, a, got, wantTwo)
			}
		}

		if topo.NumLinks() != wantLinks {
			t.Fatalf("trial %d: NumLinks() = %d, geometry says %d", trial, topo.NumLinks(), wantLinks)
		}
	}
}

// TestLinkIndexRoundTrip checks that the dense directed-link numbering is
// a bijection: LinkAt(LinkIndex(l)) == l for every link, indices cover
// [0, NumLinks) in (From, To)-ascending order, and LinkIndex returns -1
// exactly for non-links.
func TestLinkIndexRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		topo, _ := randomTopo(rng, 2+rng.Intn(30), 1000, 250, 1+rng.Float64())
		links := topo.Links()
		if len(links) != topo.NumLinks() {
			t.Fatalf("Links() length %d != NumLinks() %d", len(links), topo.NumLinks())
		}
		for i, l := range links {
			if got := topo.LinkIndex(l.From, l.To); got != i {
				t.Fatalf("LinkIndex(%v) = %d, want %d", l, got, i)
			}
			if got := topo.LinkAt(i); got != l {
				t.Fatalf("LinkAt(%d) = %v, want %v", i, got, l)
			}
			if i > 0 {
				p := links[i-1]
				if p.From > l.From || (p.From == l.From && p.To >= l.To) {
					t.Fatalf("links not sorted (From, To) ascending: %v before %v", p, l)
				}
			}
			base := topo.NodeLinkBase(l.From)
			if i < base {
				t.Fatalf("link %v at index %d before its node's base %d", l, i, base)
			}
		}
		n := topo.NumNodes()
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				idx := topo.LinkIndex(NodeID(a), NodeID(b))
				if topo.AreNeighbors(NodeID(a), NodeID(b)) {
					if idx < 0 || idx >= len(links) {
						t.Fatalf("LinkIndex(%d,%d) = %d out of range for a real link", a, b, idx)
					}
				} else if idx != -1 {
					t.Fatalf("LinkIndex(%d,%d) = %d for a non-link, want -1", a, b, idx)
				}
			}
		}
	}
}

func equalIDs(a, b []NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
