package gmp_test

import (
	"fmt"
	"strings"
	"time"

	"gmp"
)

// ExampleRun simulates the paper's Figure 3 chain under GMP and reports
// whether the allocation is near-equal (the maxmin outcome for three
// flows sharing one contention clique).
func ExampleRun() {
	res, err := gmp.Run(gmp.Config{
		Scenario: gmp.Fig3Scenario(),
		Protocol: gmp.ProtocolGMP,
		Duration: 200 * time.Second,
		Seed:     1,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("flows: %d\n", len(res.Flows))
	fmt.Printf("fair (I_eq > 0.95): %v\n", res.Ieq > 0.95)
	// Output:
	// flows: 3
	// fair (I_eq > 0.95): true
}

// ExampleRun_protocols compares the three protocols of the paper's
// evaluation on the same scenario.
func ExampleRun_protocols() {
	for _, p := range []gmp.Protocol{gmp.Protocol80211, gmp.Protocol2PP, gmp.ProtocolGMP} {
		res, err := gmp.Run(gmp.Config{
			Scenario: gmp.Fig3Scenario(),
			Protocol: p,
			Duration: 120 * time.Second,
			Seed:     1,
		})
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("%s delivers every flow: %v\n", p, res.Imm > 0)
	}
	// Output:
	// 802.11 delivers every flow: true
	// 2PP delivers every flow: true
	// GMP delivers every flow: true
}

// ExampleLoadScenario builds a scenario from its JSON representation.
func ExampleLoadScenario() {
	const file = `{
	  "name": "two-hop",
	  "nodes": [[0,0], [200,0], [400,0]],
	  "flows": [{"src": 0, "dst": 2, "weight": 1}]
	}`
	sc, err := gmp.LoadScenario(strings.NewReader(file))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%s: %d nodes, %d flow(s)\n", sc.Name, len(sc.Positions), len(sc.Flows))
	// Output:
	// two-hop: 3 nodes, 1 flow(s)
}
