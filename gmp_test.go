package gmp

import (
	"bytes"
	"math"
	"testing"
	"time"

	"gmp/internal/radio"
)

// radioDefaultParams exposes the default PHY constants to tests.
func radioDefaultParams() radio.Params { return radio.DefaultParams() }

// run executes a scenario with test-friendly defaults.
func run(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := Run(Config{Scenario: Fig3Scenario()}); err == nil {
		t.Error("missing protocol accepted")
	}
	bad := Config{Scenario: Fig3Scenario(), Protocol: ProtocolGMP, Duration: time.Second, Warmup: 2 * time.Second}
	if _, err := Run(bad); err == nil {
		t.Error("warmup beyond duration accepted")
	}
	bad2 := Config{Scenario: Fig3Scenario(), Protocol: ProtocolGMP, LossProb: 1.5}
	if _, err := Run(bad2); err == nil {
		t.Error("loss probability over 1 accepted")
	}
	noFlows := Fig3Scenario()
	noFlows.Flows = nil
	if _, err := Run(Config{Scenario: noFlows, Protocol: ProtocolGMP}); err == nil {
		t.Error("scenario without flows accepted")
	}
}

func TestUnroutableFlowRejected(t *testing.T) {
	sc := Fig3Scenario()
	sc.Flows[0].Dst = 99
	if _, err := Run(Config{Scenario: sc, Protocol: ProtocolGMP}); err == nil {
		t.Error("out-of-range destination accepted")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{Scenario: Fig3Scenario(), Protocol: ProtocolGMP, Duration: 40 * time.Second, Seed: 11}
	a := run(t, cfg)
	b := run(t, cfg)
	for i := range a.Rates {
		if a.Rates[i] != b.Rates[i] {
			t.Fatalf("same seed diverged: %v vs %v", a.Rates, b.Rates)
		}
	}
	if a.Channel != b.Channel {
		t.Errorf("channel stats diverged: %+v vs %+v", a.Channel, b.Channel)
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	base := Config{Scenario: Fig3Scenario(), Protocol: Protocol80211, Duration: 30 * time.Second}
	a := run(t, base)
	base.Seed = 99
	b := run(t, base)
	same := true
	for i := range a.Rates {
		if a.Rates[i] != b.Rates[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical rates (suspicious)")
	}
}

func TestSingleLinkSaturation(t *testing.T) {
	sc, err := ChainScenario(2, 200)
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, Config{Scenario: sc, Protocol: Protocol80211, Duration: 30 * time.Second})
	want := 520.0 // estimated saturation rate for 1024 B at 11 Mbps
	if res.Rates[0] < want*0.9 || res.Rates[0] > want*1.1 {
		t.Errorf("single-link rate %.1f, want ~%.0f", res.Rates[0], want)
	}
}

func TestGMPIsLossFree(t *testing.T) {
	res := run(t, Config{Scenario: Fig3Scenario(), Protocol: ProtocolGMP, Duration: 60 * time.Second})
	for _, f := range res.Flows {
		if f.Dropped > 0 {
			t.Errorf("flow %d dropped %d packets under GMP's congestion avoidance", f.Spec.ID, f.Dropped)
		}
	}
}

func TestTable1Fig2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation")
	}
	res := run(t, Config{Scenario: Fig2Scenario(), Protocol: ProtocolGMP})
	f1, f2, f3, f4 := res.Rates[0], res.Rates[1], res.Rates[2], res.Rates[3]

	// Table 1 shape: f2 ~ f3 ~ f4 (clique-1 equalization), f1 well above
	// them (opportunistic use of clique 0 residual capacity; paper: 564 vs
	// ~200-220).
	if f1 < 1.3*f2 || f1 < 1.3*f3 || f1 < 1.3*f4 {
		t.Errorf("f1 (%.1f) should clearly exceed f2-f4 (%.1f, %.1f, %.1f)", f1, f2, f3, f4)
	}
	lo := math.Min(f2, math.Min(f3, f4))
	hi := math.Max(f2, math.Max(f3, f4))
	if lo < 0.6*hi {
		t.Errorf("clique-1 flows not equalized: %.1f..%.1f", lo, hi)
	}
}

func TestTable2Fig2WeightedShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation")
	}
	res := run(t, Config{Scenario: Fig2WeightedScenario(), Protocol: ProtocolGMP})
	// Weights (1,2,1,3): normalized rates of the clique-1 flows (f2, f3,
	// f4) should be roughly equal, so raw rates order f4 > f2 > f3.
	mu2 := res.Flows[1].NormRate
	mu3 := res.Flows[2].NormRate
	mu4 := res.Flows[3].NormRate
	lo := math.Min(mu2, math.Min(mu3, mu4))
	hi := math.Max(mu2, math.Max(mu3, mu4))
	if lo < 0.55*hi {
		t.Errorf("normalized rates not equalized: %.1f, %.1f, %.1f", mu2, mu3, mu4)
	}
	if !(res.Rates[3] > res.Rates[2]) {
		t.Errorf("weight-3 flow (%.1f) not above weight-1 flow (%.1f)", res.Rates[3], res.Rates[2])
	}
	if !(res.Rates[1] > res.Rates[2]) {
		t.Errorf("weight-2 flow (%.1f) not above weight-1 flow (%.1f)", res.Rates[1], res.Rates[2])
	}
}

func TestTable3Fig3Comparison(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation")
	}
	results := make(map[Protocol]*Result)
	for _, p := range []Protocol{Protocol80211, Protocol2PP, ProtocolGMP} {
		results[p] = run(t, Config{Scenario: Fig3Scenario(), Protocol: p})
	}

	// Fairness ordering (Table 3): GMP > 2PP > 802.11.
	if !(results[ProtocolGMP].Imm > results[Protocol2PP].Imm) {
		t.Errorf("I_mm: GMP %.3f not above 2PP %.3f", results[ProtocolGMP].Imm, results[Protocol2PP].Imm)
	}
	if !(results[Protocol2PP].Imm > results[Protocol80211].Imm) {
		t.Errorf("I_mm: 2PP %.3f not above 802.11 %.3f", results[Protocol2PP].Imm, results[Protocol80211].Imm)
	}
	if results[ProtocolGMP].Imm < 0.6 {
		t.Errorf("GMP I_mm = %.3f, want near-equal rates (paper: 0.919)", results[ProtocolGMP].Imm)
	}
	if results[ProtocolGMP].Ieq < 0.95 {
		t.Errorf("GMP I_eq = %.3f (paper: 0.999)", results[ProtocolGMP].Ieq)
	}
	// Under 802.11 the hidden-terminal flow <0,3> is the weakest.
	r := results[Protocol80211].Rates
	if !(r[0] < r[1] && r[0] < r[2]) {
		t.Errorf("802.11: <0,3> (%.1f) should be the starved flow (%.1f, %.1f)", r[0], r[1], r[2])
	}
	// Effective throughput: GMP and 2PP above plain 802.11 (Table 3).
	if !(results[ProtocolGMP].U > results[Protocol80211].U) {
		t.Errorf("U: GMP %.1f not above 802.11 %.1f", results[ProtocolGMP].U, results[Protocol80211].U)
	}
	// 2PP favors short flows: <2,3> above <0,3> by a wide margin.
	r2 := results[Protocol2PP].Rates
	if r2[2] < 2*r2[0] {
		t.Errorf("2PP short-flow bias missing: %.1f vs %.1f", r2[2], r2[0])
	}
}

func TestTable4Fig4Comparison(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation")
	}
	results := make(map[Protocol]*Result)
	for _, p := range []Protocol{Protocol80211, Protocol2PP, ProtocolGMP} {
		results[p] = run(t, Config{Scenario: Fig4Scenario(), Protocol: p})
	}
	// GMP is by far the fairest (Table 4: 0.888 vs 0.476 and 0.125).
	if !(results[ProtocolGMP].Imm > results[Protocol2PP].Imm) {
		t.Errorf("I_mm: GMP %.3f not above 2PP %.3f", results[ProtocolGMP].Imm, results[Protocol2PP].Imm)
	}
	if !(results[ProtocolGMP].Imm > results[Protocol80211].Imm) {
		t.Errorf("I_mm: GMP %.3f not above 802.11 %.3f", results[ProtocolGMP].Imm, results[Protocol80211].Imm)
	}
	if results[ProtocolGMP].Ieq < 0.9 {
		t.Errorf("GMP I_eq = %.3f (paper: 0.998)", results[ProtocolGMP].Ieq)
	}
	// 2PP inflates the side one-hop flows (f8 in particular) while the
	// two-hop flows sit at their small basic share (paper: 347 vs 43).
	r2 := results[Protocol2PP].Rates
	if r2[7] < 1.8*r2[4] {
		t.Errorf("2PP: f8 (%.1f) should dwarf the two-hop middle flows (%.1f)", r2[7], r2[4])
	}
}

func TestFig1QueueIsolation(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation")
	}
	shared := run(t, Config{Scenario: Fig1Scenario(), Protocol: ProtocolBackpressureShared,
		Duration: 120 * time.Second})
	perDest := run(t, Config{Scenario: Fig1Scenario(), Protocol: ProtocolBackpressure,
		Duration: 120 * time.Second})

	// §5.1: with one queue per node, f2 is dragged down to f1's
	// bottleneck rate; with per-destination queues it is isolated.
	if shared.Rates[1] > 1.5*shared.Rates[0] {
		t.Errorf("shared queue: f2 (%.1f) should be coupled to f1 (%.1f)", shared.Rates[1], shared.Rates[0])
	}
	if perDest.Rates[1] < 1.5*perDest.Rates[0] {
		t.Errorf("per-destination: f2 (%.1f) should escape f1's bottleneck (%.1f)", perDest.Rates[1], perDest.Rates[0])
	}
	if perDest.Rates[1] < 1.5*shared.Rates[1] {
		t.Errorf("isolation gain missing: %.1f vs %.1f", perDest.Rates[1], shared.Rates[1])
	}
}

func TestLossInjectionStillConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation")
	}
	res := run(t, Config{Scenario: Fig3Scenario(), Protocol: ProtocolGMP,
		Duration: 200 * time.Second, LossProb: 0.02})
	if res.Imm < 0.4 {
		t.Errorf("I_mm = %.3f under 2%% frame loss", res.Imm)
	}
	for _, r := range res.Rates {
		if r <= 0 {
			t.Error("a flow starved under loss injection")
		}
	}
}

func TestNoRTSMode(t *testing.T) {
	sc, err := ChainScenario(2, 200)
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, Config{Scenario: sc, Protocol: Protocol80211, Duration: 20 * time.Second, DisableRTS: true})
	// Without RTS/CTS the exchange is shorter: higher single-link rate.
	withRTS := run(t, Config{Scenario: sc, Protocol: Protocol80211, Duration: 20 * time.Second})
	if res.Rates[0] <= withRTS.Rates[0] {
		t.Errorf("no-RTS rate %.1f not above RTS rate %.1f", res.Rates[0], withRTS.Rates[0])
	}
}

func TestCBRSourcesOption(t *testing.T) {
	sc, err := ChainScenario(2, 200)
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, Config{Scenario: sc, Protocol: Protocol80211, Duration: 20 * time.Second, CBRSources: true})
	if res.Rates[0] < 400 {
		t.Errorf("CBR single-link rate %.1f", res.Rates[0])
	}
}

func TestResultFieldsPopulated(t *testing.T) {
	res := run(t, Config{Scenario: Fig3Scenario(), Protocol: ProtocolGMP, Duration: 40 * time.Second})
	if res.Scenario != "fig3" || res.Protocol != ProtocolGMP {
		t.Error("identification fields missing")
	}
	if len(res.Flows) != 3 || len(res.Rates) != 3 || len(res.Reference) != 3 {
		t.Error("per-flow slices wrong length")
	}
	if len(res.Trace) == 0 {
		t.Error("GMP trace empty")
	}
	if len(res.MAC) != 4 {
		t.Errorf("MAC stats for %d nodes, want 4", len(res.MAC))
	}
	wantHops := []int{3, 2, 1}
	for i, f := range res.Flows {
		if f.Hops != wantHops[i] {
			t.Errorf("flow %d hops = %d, want %d", i, f.Hops, wantHops[i])
		}
		if f.Delivered <= 0 {
			t.Errorf("flow %d delivered nothing", i)
		}
	}
	if res.Channel.Transmissions == 0 {
		t.Error("no transmissions recorded")
	}
}

func TestTwoPPTargetPopulated(t *testing.T) {
	res := run(t, Config{Scenario: Fig3Scenario(), Protocol: Protocol2PP, Duration: 30 * time.Second})
	if len(res.TwoPPTarget) != 3 {
		t.Fatalf("2PP target = %v", res.TwoPPTarget)
	}
	// The 1-hop flow's target is the largest.
	if !(res.TwoPPTarget[2] > res.TwoPPTarget[0]) {
		t.Error("2PP target not short-flow biased")
	}
}

func TestReferenceMatchesWaterFilling(t *testing.T) {
	res := run(t, Config{Scenario: Fig3Scenario(), Protocol: ProtocolGMP, Duration: 20 * time.Second})
	// Fig3: one clique, crossings 3/2/1 -> equal split of C/6 each.
	for i := 1; i < 3; i++ {
		if math.Abs(res.Reference[i]-res.Reference[0]) > 1e-6 {
			t.Errorf("reference = %v, want equal rates", res.Reference)
		}
	}
}

func TestMeshGatewayScenarioRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation")
	}
	sc, err := MeshGatewayScenario(3, 3, 4, 200, 5)
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, Config{Scenario: sc, Protocol: ProtocolGMP, Duration: 200 * time.Second})
	for i, r := range res.Rates {
		if r <= 0 {
			t.Errorf("gateway flow %d starved", i)
		}
	}
	if res.Ieq < 0.5 {
		t.Errorf("gateway flows wildly unequal: I_eq = %.3f", res.Ieq)
	}
}

func TestProtocolStrings(t *testing.T) {
	for p, want := range map[Protocol]string{
		ProtocolGMP:                "GMP",
		Protocol80211:              "802.11",
		Protocol2PP:                "2PP",
		ProtocolBackpressure:       "backpressure/per-dest",
		ProtocolBackpressureShared: "backpressure/shared",
	} {
		if p.String() != want {
			t.Errorf("%d = %q", int(p), p.String())
		}
	}
}

func TestFlowChurnReallocation(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation")
	}
	// Baseline: all three fig3 flows active, measured over [250s, 400s].
	base := run(t, Config{Scenario: Fig3Scenario(), Protocol: ProtocolGMP,
		Warmup: 250 * time.Second})

	// Churn: the one-hop flow <2,3> leaves at t=200s; the survivors
	// should absorb the freed capacity by the measurement window.
	sc := Fig3Scenario()
	sc.Flows[2].Stop = 200 * time.Second
	churn := run(t, Config{Scenario: sc, Protocol: ProtocolGMP,
		Warmup: 250 * time.Second})

	if churn.Rates[0] < 1.08*base.Rates[0] {
		t.Errorf("<0,3> did not absorb freed capacity: %.1f vs baseline %.1f",
			churn.Rates[0], base.Rates[0])
	}
	if churn.Rates[1] < 1.08*base.Rates[1] {
		t.Errorf("<1,3> did not absorb freed capacity: %.1f vs baseline %.1f",
			churn.Rates[1], base.Rates[1])
	}
	if churn.Rates[2] > 1 {
		t.Errorf("stopped flow still delivering %.1f pkt/s in the window", churn.Rates[2])
	}
	// The two survivors should stay near-equal.
	lo, hi := churn.Rates[0], churn.Rates[1]
	if lo > hi {
		lo, hi = hi, lo
	}
	if lo < 0.6*hi {
		t.Errorf("survivors diverged: %.1f vs %.1f", lo, hi)
	}
}

func TestFlowLateJoin(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation")
	}
	// The three-hop flow <0,3> joins at t=150s; by the measurement
	// window GMP must have pulled it up to a fair share.
	sc := Fig3Scenario()
	sc.Flows[0].Start = 150 * time.Second
	res := run(t, Config{Scenario: sc, Protocol: ProtocolGMP,
		Warmup: 300 * time.Second})
	if res.Rates[0] < 0.4*res.Rates[2] {
		t.Errorf("late joiner stuck at %.1f vs incumbent %.1f", res.Rates[0], res.Rates[2])
	}
}

func TestEventTraceRecorded(t *testing.T) {
	res := run(t, Config{Scenario: Fig3Scenario(), Protocol: ProtocolGMP,
		Duration: 20 * time.Second, EventTrace: 500})
	if len(res.Events) != 500 {
		t.Fatalf("events = %d, want full ring of 500", len(res.Events))
	}
	// Events must be time-ordered and include transmissions.
	sawTx := false
	for i := 1; i < len(res.Events); i++ {
		if res.Events[i].At < res.Events[i-1].At {
			t.Fatal("trace not time-ordered")
		}
	}
	for _, e := range res.Events {
		if e.Detail == "" {
			t.Fatal("event without detail")
		}
		sawTx = sawTx || e.Kind.String() == "tx"
	}
	if !sawTx {
		t.Error("no transmissions in trace")
	}
}

// TestConservation checks end-to-end packet conservation: under GMP's
// loss-free congestion avoidance, everything injected is either
// delivered or still buffered in the network when the simulation stops.
func TestConservation(t *testing.T) {
	res := run(t, Config{Scenario: Fig3Scenario(), Protocol: ProtocolGMP,
		Duration: 60 * time.Second})
	var delivered, dropped int64
	for _, f := range res.Flows {
		delivered += f.Delivered
		dropped += f.Dropped
	}
	var sent int64
	for _, m := range res.MAC {
		sent += m.DataAcked
	}
	if dropped != 0 {
		t.Errorf("dropped %d packets under CA", dropped)
	}
	// Every end-to-end delivery requires at least one MAC-acked data
	// transmission, and buffering is bounded by nodes x queue slots.
	if delivered > sent {
		t.Errorf("delivered %d exceeds MAC deliveries %d", delivered, sent)
	}
	maxBuffered := int64(4 * 11) // nodes x (slots + 1 in-flight)
	if sent < delivered {
		t.Errorf("accounting underflow")
	}
	_ = maxBuffered
}

func TestScenarioJSONRoundTripThroughAPI(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveScenario(&buf, Fig2Scenario()); err != nil {
		t.Fatal(err)
	}
	sc, err := LoadScenario(&buf)
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, Config{Scenario: sc, Protocol: Protocol80211, Duration: 10 * time.Second})
	if len(res.Flows) != 4 {
		t.Fatalf("loaded scenario has %d flows", len(res.Flows))
	}
}

func TestInBandControlOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation")
	}
	res := run(t, Config{Scenario: Fig3Scenario(), Protocol: ProtocolGMP,
		Duration: 200 * time.Second, InBandControl: true})
	if res.Channel.ControlFrames == 0 {
		t.Fatal("in-band control produced no broadcasts")
	}
	if res.ControlOverhead <= 0 || res.ControlOverhead > 0.05 {
		t.Errorf("control overhead = %.4f, want small positive fraction", res.ControlOverhead)
	}
	// The protocol must still converge with control traffic on the air.
	if res.Imm < 0.5 {
		t.Errorf("GMP I_mm = %.3f with in-band control", res.Imm)
	}
	// Without the option, no control frames appear.
	plain := run(t, Config{Scenario: Fig3Scenario(), Protocol: ProtocolGMP,
		Duration: 40 * time.Second})
	if plain.Channel.ControlFrames != 0 {
		t.Error("control frames recorded without InBandControl")
	}
}

// TestScaleStress runs a larger random network end to end: 25 nodes,
// 10 flows, all three protocols. It guards against panics, stuck
// simulations, and gross accounting errors at scale.
func TestScaleStress(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation")
	}
	sc, err := RandomScenario(25, 10, 1100, 1100, 13)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Protocol{Protocol80211, Protocol2PP, ProtocolGMP} {
		res, err := Run(Config{Scenario: sc, Protocol: p,
			Duration: 120 * time.Second, Seed: 13})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if res.Channel.Transmissions == 0 {
			t.Fatalf("%s: dead network", p)
		}
		delivered := int64(0)
		for _, f := range res.Flows {
			delivered += f.Delivered
		}
		if delivered == 0 {
			t.Fatalf("%s: nothing delivered", p)
		}
		if p == ProtocolGMP {
			for _, f := range res.Flows {
				if f.Dropped > 0 {
					t.Errorf("GMP dropped %d packets of flow %d", f.Dropped, f.Spec.ID)
				}
			}
		}
	}
}

func TestDistributedMatchesCentralOnFig3(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation")
	}
	central := run(t, Config{Scenario: Fig3Scenario(), Protocol: ProtocolGMP})
	dist := run(t, Config{Scenario: Fig3Scenario(), Protocol: ProtocolGMPDistributed})
	if dist.Imm < 0.55 {
		t.Errorf("distributed I_mm = %.3f", dist.Imm)
	}
	// The two runtimes implement the same conditions; their fairness
	// should land in the same band.
	if dist.Imm < central.Imm-0.3 {
		t.Errorf("distributed (%.3f) far below central (%.3f)", dist.Imm, central.Imm)
	}
	// Out-of-band control: no broadcast frames on the channel.
	if dist.Channel.ControlFrames != 0 {
		t.Errorf("OOB distributed run put %d control frames on the air", dist.Channel.ControlFrames)
	}
}

func TestDistributedFig4Fairness(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation")
	}
	res := run(t, Config{Scenario: Fig4Scenario(), Protocol: ProtocolGMPDistributed})
	if res.Imm < 0.5 || res.Ieq < 0.93 {
		t.Errorf("distributed fig4: I_mm=%.3f I_eq=%.3f", res.Imm, res.Ieq)
	}
	for _, f := range res.Flows {
		if f.Dropped > 0 {
			t.Errorf("flow %d dropped %d packets", f.Spec.ID, f.Dropped)
		}
	}
}

func TestDistributedInBandSurvives(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation")
	}
	// With control on the real channel, broadcasts are lost to
	// hidden-terminal collisions in congested regions and convergence
	// degrades (the bootstrap problem documented in EXPERIMENTS.md) —
	// but the protocol must stay live and loss-free for data.
	res := run(t, Config{Scenario: Fig3Scenario(), Protocol: ProtocolGMPDistributed,
		InBandControl: true})
	if res.Channel.ControlFrames == 0 {
		t.Fatal("in-band distributed run sent no control frames")
	}
	for i, r := range res.Rates {
		if r <= 0 {
			t.Errorf("flow %d starved completely", i)
		}
	}
	for _, f := range res.Flows {
		if f.Dropped > 0 {
			t.Errorf("flow %d dropped %d data packets", f.Spec.ID, f.Dropped)
		}
	}
}

func TestTopologyZooUnderGMP(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation")
	}
	cross, err := CrossScenario(2, 200)
	if err != nil {
		t.Fatal(err)
	}
	chains, err := ParallelChainsScenario(2, 4, 200, 240)
	if err != nil {
		t.Fatal(err)
	}
	star, err := StarScenario(5, 200)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name   string
		sc     Scenario
		minImm float64
	}{
		// Two identical crossing flows must split the center evenly.
		{"cross", cross, 0.55},
		// Identical parallel chains must equalize.
		{"chains", chains, 0.55},
		// Star spokes share one clique: near-perfect equality.
		{"star", star, 0.6},
	} {
		res, err := Run(Config{Scenario: tc.sc, Protocol: ProtocolGMP,
			Duration: 300 * time.Second, Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.Imm < tc.minImm {
			t.Errorf("%s: I_mm = %.3f, want >= %.2f (rates %v)", tc.name, res.Imm, tc.minImm, res.Rates)
		}
		for _, f := range res.Flows {
			if f.Dropped > 0 {
				t.Errorf("%s: flow %d dropped %d", tc.name, f.Spec.ID, f.Dropped)
			}
		}
	}
}

func TestRadioOverride(t *testing.T) {
	sc, err := ChainScenario(2, 200)
	if err != nil {
		t.Fatal(err)
	}
	// Double the data rate: single-link throughput must rise.
	par := radioDefaultParams()
	par.DataRateMbps = 22
	fast := run(t, Config{Scenario: sc, Protocol: Protocol80211,
		Duration: 20 * time.Second, Radio: &par})
	slow := run(t, Config{Scenario: sc, Protocol: Protocol80211,
		Duration: 20 * time.Second})
	if fast.Rates[0] <= slow.Rates[0] {
		t.Errorf("22 Mbps (%.1f) not faster than 11 Mbps (%.1f)", fast.Rates[0], slow.Rates[0])
	}
}

func TestSharedQueueSlotsApplies(t *testing.T) {
	// A 1-slot shared FIFO at the relay throttles the 2-hop flow hard.
	sc, err := ChainScenario(3, 200)
	if err != nil {
		t.Fatal(err)
	}
	tiny := run(t, Config{Scenario: sc, Protocol: Protocol80211,
		Duration: 20 * time.Second, SharedQueueSlots: 1})
	big := run(t, Config{Scenario: sc, Protocol: Protocol80211,
		Duration: 20 * time.Second, SharedQueueSlots: 300})
	if tiny.Rates[0] >= big.Rates[0] {
		t.Errorf("1-slot relay (%.1f) not worse than 300-slot (%.1f)", tiny.Rates[0], big.Rates[0])
	}
}

func TestWiderCSRange(t *testing.T) {
	// With carrier sense covering the whole chain, the fig3 hidden
	// terminal disappears and <0,3> does far better under plain 802.11.
	sc := Fig3Scenario()
	sc.Radio.CSRange = 700
	wide := run(t, Config{Scenario: sc, Protocol: Protocol80211, Duration: 60 * time.Second})
	narrow := run(t, Config{Scenario: Fig3Scenario(), Protocol: Protocol80211, Duration: 60 * time.Second})
	if wide.Rates[0] < 3*narrow.Rates[0] {
		t.Errorf("wide CS <0,3> = %.1f, narrow = %.1f: hidden terminal not mitigated",
			wide.Rates[0], narrow.Rates[0])
	}
}

func TestFairAggregationImprovesMeshFairness(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation")
	}
	sc, err := MeshGatewayScenario(4, 4, 6, 200, 42)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Run(Config{Scenario: sc, Protocol: ProtocolBackpressure,
		Duration: 300 * time.Second, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	fair, err := Run(Config{Scenario: sc, Protocol: ProtocolBackpressure,
		Duration: 300 * time.Second, Seed: 42, FairAggregation: true})
	if err != nil {
		t.Fatal(err)
	}
	// Without rate adaptation, FIFO admission lets sources near the
	// gateway crowd out relayed traffic completely (the minimum rate is
	// ~0); per-origin quotas and round robin must lift both the floor
	// and the equality index substantially.
	minRate := func(r *Result) float64 {
		m := r.Rates[0]
		for _, v := range r.Rates {
			if v < m {
				m = v
			}
		}
		return m
	}
	if got := minRate(fair); got < 5 {
		t.Errorf("fair aggregation minimum rate %.2f pkt/s, want > 5 (plain: %.2f)",
			got, minRate(plain))
	}
	if fair.Ieq < plain.Ieq+0.15 {
		t.Errorf("fair aggregation I_eq %.3f vs plain %.3f: no substantial gain",
			fair.Ieq, plain.Ieq)
	}
	for _, f := range fair.Flows {
		if f.Dropped > 0 {
			t.Errorf("fair aggregation dropped packets (flow %d: %d)", f.Spec.ID, f.Dropped)
		}
	}
}
