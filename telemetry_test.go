package gmp

import (
	"math"
	"testing"
	"time"
)

// runTelemetry runs a short GMP session on the given scenario with
// telemetry enabled.
func runTelemetry(t *testing.T, sc Scenario) *Result {
	t.Helper()
	res, err := Run(Config{
		Scenario:  sc,
		Protocol:  ProtocolGMP,
		Duration:  120 * time.Second,
		Warmup:    60 * time.Second,
		Seed:      1,
		Telemetry: &TelemetryConfig{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Telemetry == nil {
		t.Fatal("telemetry enabled but Result.Telemetry is nil")
	}
	return res
}

// TestTelemetryContent checks the recorded telemetry against the run it
// describes, on the paper's Fig2 and Fig3 scenarios: histograms account
// for the delivered packets, periodic samples have the right shape, the
// limit-event chain is consistent, and every flow the protocol ended up
// rate-limiting below its demand has a bottleneck condition in the
// timeline — the local condition that the maxmin allocation binds on.
func TestTelemetryContent(t *testing.T) {
	scenarios := []Scenario{Fig2Scenario(), Fig3Scenario()}
	for _, sc := range scenarios {
		t.Run(sc.Name, func(t *testing.T) {
			res := runTelemetry(t, sc)
			tel := res.Telemetry

			if tel.Meta.Flows != len(sc.Flows) {
				t.Errorf("Meta.Flows = %d, want %d", tel.Meta.Flows, len(sc.Flows))
			}
			if tel.Meta.Protocol != "GMP" || tel.Meta.Scenario != sc.Name {
				t.Errorf("Meta = %+v", tel.Meta)
			}

			// Latency histograms cover at least the measured deliveries
			// (the recorder sees the whole session including warmup).
			for i, f := range res.Flows {
				fl := tel.Flows[i]
				if f.Delivered > 0 && fl.Latency.Count < f.Delivered {
					t.Errorf("flow %d: histogram count %d < measured deliveries %d",
						i, fl.Latency.Count, f.Delivered)
				}
				if fl.Delivered != fl.Latency.Count {
					t.Errorf("flow %d: Delivered %d != histogram count %d",
						i, fl.Delivered, fl.Latency.Count)
				}
			}

			// One sample per GMP period over the session.
			if len(tel.Samples) < 20 {
				t.Errorf("samples = %d, want >= 20 (120s / 4s period, minus edge)", len(tel.Samples))
			}
			for _, s := range tel.Samples {
				if len(s.Queues) != tel.Meta.Nodes || len(s.Limits) != tel.Meta.Flows {
					t.Fatalf("sample at %v has wrong vector sizes: %+v", s.At, s)
				}
				for _, l := range s.Links {
					if l.Util < 0 || l.Util > 1.05 {
						t.Errorf("sample at %v: link %d->%d utilization %v outside [0,1]",
							s.At, l.From, l.To, l.Util)
					}
				}
			}

			// Limit events for one flow chain: each change starts from
			// the limit the previous one installed.
			last := make(map[FlowID]float64)
			for _, l := range tel.Limits {
				if prev, ok := last[l.Flow]; ok && l.Before != prev {
					t.Errorf("flow %d limit chain broken at t=%v: before %v, previous after %v",
						l.Flow, l.At, l.Before, prev)
				}
				last[l.Flow] = l.After
			}

			// The timeline explains the allocation: every flow that
			// finished rate-limited below its demand was reduced by some
			// local condition, so it has a final bottleneck; and at least
			// one flow in these contended scenarios is bottlenecked.
			bottlenecked := 0
			for i, f := range res.Flows {
				limited := !math.IsInf(f.Limit, 1) && f.Limit < sc.Flows[i].DesiredRate
				bn := tel.FinalBottleneck(FlowID(i))
				if bn != 0 {
					bottlenecked++
				}
				if limited && bn == 0 {
					t.Errorf("flow %d ends limited to %.1f pkt/s (demand %.1f) but has no reducing condition event",
						i, f.Limit, sc.Flows[i].DesiredRate)
				}
			}
			if bottlenecked == 0 {
				t.Error("no flow has a bottleneck condition; contended scenarios must reduce someone")
			}

			// The final limits in the last sample agree with the Result.
			lastSample := tel.Samples[len(tel.Samples)-1]
			for i, f := range res.Flows {
				want := f.Limit
				if math.IsInf(want, 1) {
					want = -1
				}
				if got := lastSample.Limits[i]; got != want {
					t.Errorf("flow %d: last sampled limit %v, Result limit %v", i, got, want)
				}
			}
		})
	}
}

// TestTelemetrySampleInterval checks the Config.SampleInterval override.
func TestTelemetrySampleInterval(t *testing.T) {
	res, err := Run(Config{
		Scenario:  Fig2Scenario(),
		Protocol:  ProtocolGMP,
		Duration:  40 * time.Second,
		Telemetry: &TelemetryConfig{SampleInterval: 2 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	n := len(res.Telemetry.Samples)
	if n < 18 || n > 20 {
		t.Errorf("samples = %d, want ~19 (40s at 2s spacing)", n)
	}
	if res.Telemetry.Meta.SampleInterval != 2*time.Second {
		t.Errorf("Meta.SampleInterval = %v", res.Telemetry.Meta.SampleInterval)
	}
}

// TestTelemetryOffByDefault pins the disabled state: without
// Config.Telemetry the Result carries no telemetry.
func TestTelemetryOffByDefault(t *testing.T) {
	res, err := Run(Config{
		Scenario: Fig2Scenario(),
		Protocol: ProtocolGMP,
		Duration: 20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Telemetry != nil {
		t.Error("Result.Telemetry set without Config.Telemetry")
	}
}

// TestTelemetryDistributed checks the distributed engine records the
// condition timeline too, and deterministically.
func TestTelemetryDistributed(t *testing.T) {
	cfg := Config{
		Scenario:  Fig3Scenario(),
		Protocol:  ProtocolGMPDistributed,
		Duration:  120 * time.Second,
		Warmup:    60 * time.Second,
		Seed:      1,
		Telemetry: &TelemetryConfig{},
	}
	res1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res1.Telemetry.Conditions) == 0 {
		t.Fatal("distributed run recorded no condition events")
	}
	res2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res1.Telemetry.Conditions) != len(res2.Telemetry.Conditions) {
		t.Fatalf("condition counts differ across identical runs: %d vs %d",
			len(res1.Telemetry.Conditions), len(res2.Telemetry.Conditions))
	}
	for i := range res1.Telemetry.Conditions {
		if res1.Telemetry.Conditions[i] != res2.Telemetry.Conditions[i] {
			t.Fatalf("condition %d differs: %+v vs %+v",
				i, res1.Telemetry.Conditions[i], res2.Telemetry.Conditions[i])
		}
	}
}
