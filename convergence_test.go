package gmp

import (
	"testing"
	"time"
)

func round(at time.Duration, rates ...float64) Round {
	return Round{Time: at, Rates: rates}
}

func TestConvergenceTimeSteadyTrace(t *testing.T) {
	var trace []Round
	for i := 0; i < 20; i++ {
		trace = append(trace, round(time.Duration(i)*4*time.Second, 100, 101, 99))
	}
	at, ok := ConvergenceTime(trace, 0.1)
	if !ok {
		t.Fatal("steady trace did not converge")
	}
	if at != 0 {
		t.Errorf("converged at %v, want 0 (steady from the start)", at)
	}
}

func TestConvergenceTimeAfterTransient(t *testing.T) {
	var trace []Round
	for i := 0; i < 10; i++ {
		trace = append(trace, round(time.Duration(i)*4*time.Second, float64(10+30*i))) // ramp
	}
	for i := 10; i < 30; i++ {
		trace = append(trace, round(time.Duration(i)*4*time.Second, 500))
	}
	at, ok := ConvergenceTime(trace, 0.1)
	if !ok {
		t.Fatal("trace with settled tail did not converge")
	}
	// The 10% outlier allowance may place the point a round or two
	// before the ramp fully ends.
	if at < 24*time.Second || at > 44*time.Second {
		t.Errorf("converged at %v, want ~40s", at)
	}
}

func TestConvergenceTimeNeverSettles(t *testing.T) {
	var trace []Round
	for i := 0; i < 30; i++ {
		r := 100.0
		if i%2 == 0 {
			r = 300
		}
		trace = append(trace, round(time.Duration(i)*4*time.Second, r))
	}
	if _, ok := ConvergenceTime(trace, 0.1); ok {
		t.Error("oscillating trace reported converged")
	}
}

func TestConvergenceTimeDegenerate(t *testing.T) {
	if _, ok := ConvergenceTime(nil, 0.1); ok {
		t.Error("nil trace converged")
	}
	if _, ok := ConvergenceTime([]Round{round(0, 1)}, 0.1); ok {
		t.Error("one-round trace converged")
	}
	long := make([]Round, 10)
	for i := range long {
		long[i] = round(time.Duration(i), 5)
	}
	if _, ok := ConvergenceTime(long, 0); ok {
		t.Error("zero tolerance accepted")
	}
}

func TestConvergenceTimeOnRealRun(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation")
	}
	res := run(t, Config{Scenario: Fig3Scenario(), Protocol: ProtocolGMP})
	at, ok := ConvergenceTime(res.Trace, 0.3)
	if !ok {
		t.Fatal("fig3 GMP run never settled at 30% tolerance")
	}
	if at > 350*time.Second {
		t.Errorf("converged only at %v", at)
	}
}

func TestGeographicRoutingRun(t *testing.T) {
	// Fig3's chain routes identically under greedy geographic
	// forwarding; the run must behave the same modulo noise.
	res := run(t, Config{Scenario: Fig3Scenario(), Protocol: Protocol80211,
		Duration: 30 * time.Second, GeographicRouting: true})
	wantHops := []int{3, 2, 1}
	for i, f := range res.Flows {
		if f.Hops != wantHops[i] {
			t.Errorf("flow %d hops = %d, want %d", i, f.Hops, wantHops[i])
		}
	}
}
