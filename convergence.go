package gmp

import (
	"math"
	"time"

	"gmp/internal/stats"
)

// ConvergenceReport is the result of convergence analysis over a trace:
// when the run settled and what it settled to.
type ConvergenceReport struct {
	// Time is the virtual time of the earliest round from which the
	// trace stays settled (zero when Settled is false).
	Time time.Duration
	// Settled reports whether the trace converged at all.
	Settled bool
	// TailMeans are the per-flow mean rates over the second half of the
	// trace — the regime the run settled into (valid even when Settled
	// is false, as long as the trace was long enough to analyze).
	TailMeans []float64
}

// DefaultRecoveryTol is the rate-band tolerance used by Run when
// computing RecoveryTime. Poisson sources make per-period rates noisy,
// so tolerances below ~0.15 rarely report convergence; 0.25 matches the
// guidance on ConvergenceTime.
const DefaultRecoveryTol = 0.25

// ConvergenceTime estimates when a GMP run settled: the earliest trace
// round from which at least 90% of the remaining rounds keep every
// flow's per-period rate within tol (fractionally) of its settled mean
// (the mean over the trace's second half). It returns false when the
// trace never settles or is too short to judge.
//
// Poisson sources make per-period rates noisy, so tolerances below ~0.15
// rarely report convergence; 0.25-0.3 is a reasonable range for the
// paper's scenarios. For the settled per-flow means alongside the time,
// use Convergence.
func ConvergenceTime(trace []Round, tol float64) (time.Duration, bool) {
	rep := Convergence(trace, tol)
	return rep.Time, rep.Settled
}

// Convergence runs the analysis behind ConvergenceTime and additionally
// returns the settled per-flow tail means, so recovery-time analysis
// does not recompute them.
func Convergence(trace []Round, tol float64) ConvergenceReport {
	if len(trace) < 4 || tol <= 0 {
		return ConvergenceReport{}
	}
	flows := len(trace[0].Rates)
	if flows == 0 {
		return ConvergenceReport{}
	}

	// Tail means per flow, computed over the last half of the trace —
	// the regime the run settled into, if it settled at all.
	half := trace[len(trace)/2:]
	means := make([]float64, flows)
	for f := 0; f < flows; f++ {
		vals := make([]float64, len(half))
		for i, r := range half {
			vals[i] = r.Rates[f]
		}
		means[f] = stats.Mean(vals)
	}
	rep := ConvergenceReport{TailMeans: means}

	inBand := func(r Round) bool {
		for f := 0; f < flows; f++ {
			m := means[f]
			if m <= 0 {
				if r.Rates[f] > tol*10 {
					return false
				}
				continue
			}
			if math.Abs(r.Rates[f]-m) > tol*m {
				return false
			}
		}
		return true
	}

	// Earliest suffix whose out-of-band fraction stays below 10%.
	bad := make([]int, len(trace)+1)
	for i := len(trace) - 1; i >= 0; i-- {
		bad[i] = bad[i+1]
		if !inBand(trace[i]) {
			bad[i]++
		}
	}
	for i := 0; i < len(trace)-2; i++ {
		n := len(trace) - i
		if float64(bad[i]) <= 0.1*float64(n) {
			rep.Time = trace[i].Time
			rep.Settled = true
			return rep
		}
	}
	return rep
}

// FlowTimeToFairShare measures how long a single flow took to reach its
// fair share after arriving mid-run: the earliest trace round in
// (from, until] from which the flow's per-period rate stays within tol
// (fractionally) of its settled mean — the mean over the last half of
// its active rounds — for at least 90% of the remaining active rounds.
// The returned duration is relative to from (the arrival time);
// until <= 0 means the end of the trace. It reports false when fewer
// than 4 active rounds exist or the flow never settled.
func FlowTimeToFairShare(trace []Round, flow int, from, until time.Duration, tol float64) (time.Duration, bool) {
	if tol <= 0 || flow < 0 {
		return 0, false
	}
	var act []Round
	for _, r := range trace {
		if r.Time <= from || flow >= len(r.Rates) {
			continue
		}
		if until > 0 && r.Time > until {
			break
		}
		act = append(act, r)
	}
	if len(act) < 4 {
		return 0, false
	}
	half := act[len(act)/2:]
	vals := make([]float64, len(half))
	for i, r := range half {
		vals[i] = r.Rates[flow]
	}
	mean := stats.Mean(vals)
	inBand := func(r Round) bool {
		if mean <= 0 {
			return r.Rates[flow] <= tol*10
		}
		return math.Abs(r.Rates[flow]-mean) <= tol*mean
	}
	bad := make([]int, len(act)+1)
	for i := len(act) - 1; i >= 0; i-- {
		bad[i] = bad[i+1]
		if !inBand(act[i]) {
			bad[i]++
		}
	}
	for i := 0; i < len(act)-2; i++ {
		if float64(bad[i]) <= 0.1*float64(len(act)-i) {
			return act[i].Time - from, true
		}
	}
	return 0, false
}

// RecoveryReport measures re-convergence after a perturbation: it runs
// Convergence over only the rounds recorded strictly after the given
// time (the last fault of a schedule) and reports the settle time
// relative to that instant. The report's Time is therefore the recovery
// duration, not an absolute trace time. It returns an unsettled report
// when too few post-fault rounds exist to judge.
func RecoveryReport(trace []Round, after time.Duration, tol float64) ConvergenceReport {
	var post []Round
	for _, r := range trace {
		if r.Time > after {
			post = append(post, r)
		}
	}
	rep := Convergence(post, tol)
	if rep.Settled {
		rep.Time -= after
	}
	return rep
}
