package gmp

import (
	"math"
	"time"

	"gmp/internal/stats"
)

// ConvergenceTime estimates when a GMP run settled: the earliest trace
// round from which at least 90% of the remaining rounds keep every
// flow's per-period rate within tol (fractionally) of its settled mean
// (the mean over the trace's second half). It returns false when the
// trace never settles or is too short to judge.
//
// Poisson sources make per-period rates noisy, so tolerances below ~0.15
// rarely report convergence; 0.25-0.3 is a reasonable range for the
// paper's scenarios.
func ConvergenceTime(trace []Round, tol float64) (time.Duration, bool) {
	if len(trace) < 4 || tol <= 0 {
		return 0, false
	}
	flows := len(trace[0].Rates)
	if flows == 0 {
		return 0, false
	}

	// Tail means per flow, computed over the last half of the trace —
	// the regime the run settled into, if it settled at all.
	half := trace[len(trace)/2:]
	means := make([]float64, flows)
	for f := 0; f < flows; f++ {
		vals := make([]float64, len(half))
		for i, r := range half {
			vals[i] = r.Rates[f]
		}
		means[f] = stats.Mean(vals)
	}

	inBand := func(r Round) bool {
		for f := 0; f < flows; f++ {
			m := means[f]
			if m <= 0 {
				if r.Rates[f] > tol*10 {
					return false
				}
				continue
			}
			if math.Abs(r.Rates[f]-m) > tol*m {
				return false
			}
		}
		return true
	}

	// Earliest suffix whose out-of-band fraction stays below 10%.
	bad := make([]int, len(trace)+1)
	for i := len(trace) - 1; i >= 0; i-- {
		bad[i] = bad[i+1]
		if !inBand(trace[i]) {
			bad[i]++
		}
	}
	for i := 0; i < len(trace)-2; i++ {
		n := len(trace) - i
		if float64(bad[i]) <= 0.1*float64(n) {
			return trace[i].Time, true
		}
	}
	return 0, false
}
