package gmp

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// TestRunContextCancelWithinEpoch pins the cancellation latency
// contract gmpd's DELETE endpoint depends on: RunContext aborts within
// one event-kernel cancellation epoch (the one-simulated-second poll in
// Run) of the context being cancelled, reports the simulated abort
// time, and wraps the context's error. Because the poll is the only
// cancellation point and it fires on whole simulated seconds, the
// reported abort time must be an integral second.
func TestRunContextCancelWithinEpoch(t *testing.T) {
	cfg := shortCfg(Fig3Scenario())
	// Effectively unbounded: only cancellation can end this run.
	cfg.Duration = 10 * time.Hour
	cfg.Warmup = time.Second
	cfg.Seed = 1

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(150 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := RunContext(ctx, cfg)
	elapsed := time.Since(start)

	if err == nil {
		t.Fatalf("run of simulated duration %v completed in %v wall time without an error", cfg.Duration, elapsed)
	}
	if res != nil {
		t.Fatal("aborted run returned a non-nil result")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	msg := err.Error()
	i := strings.Index(msg, "aborted at t=")
	if i < 0 {
		t.Fatalf("error %q does not report the simulated abort time", msg)
	}
	at := msg[i+len("aborted at t="):]
	if j := strings.Index(at, ":"); j >= 0 {
		at = at[:j]
	}
	d, perr := time.ParseDuration(at)
	if perr != nil {
		t.Fatalf("cannot parse abort time from %q: %v", msg, perr)
	}
	if d <= 0 || d >= cfg.Duration {
		t.Fatalf("abort time %v outside (0, %v)", d, cfg.Duration)
	}
	// Within one epoch of the cancel: the abort lands exactly on a
	// cancellation-poll event, i.e. a whole simulated second.
	if d%time.Second != 0 {
		t.Fatalf("abort time %v is not on a cancellation-epoch boundary", d)
	}
}

// TestVehicularAndDroneScenariosRun smoke-tests the two service-layer
// scenario generators end to end: a short GMP run over each completes
// and produces per-flow rates.
func TestVehicularAndDroneScenariosRun(t *testing.T) {
	for _, name := range []string{"vehicular", "drones"} {
		t.Run(name, func(t *testing.T) {
			sc, err := NamedScenario(name)
			if err != nil {
				t.Fatal(err)
			}
			cfg := shortCfg(sc)
			cfg.Seed = 1
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Flows) != len(sc.Flows) {
				t.Fatalf("got %d flow results, want %d", len(res.Flows), len(sc.Flows))
			}
			for i, f := range res.Flows {
				if f.Rate < 0 {
					t.Fatalf("flow %d has negative rate %v", i, f.Rate)
				}
			}
		})
	}
}
